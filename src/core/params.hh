/**
 * @file
 * Parameter records for the analytic power/performance model.
 *
 * Notation (restored from the paper's OCR-mangled Greek):
 *   alpha  — average degree of superscalar processing (paper's "1")
 *   gamma  — weighted average fraction of the pipeline that a hazard
 *            stalls (paper's "2")
 *   beta   — latch-count growth exponent, latches ~ N_L * p^beta
 *            (paper's "3")
 *   m      — metric exponent in BIPS^m / W
 */

#ifndef PIPEDEPTH_CORE_PARAMS_HH
#define PIPEDEPTH_CORE_PARAMS_HH

#include <string>

namespace pipedepth
{

/**
 * Workload + technology parameters of the Hartstein-Puzak performance
 * model (Eq. 1). Times are in FO4 delays.
 */
struct MachineParams
{
    double alpha = 2.0;       //!< superscalar processing degree
    double gamma = 0.45;      //!< hazard stall fraction of the pipeline
    double hazard_ratio = 0.12; //!< N_H / N_I, hazards per instruction
    double t_p = 140.0;       //!< total logic depth of the design, FO4
    double t_o = 2.5;         //!< per-stage latch/clock overhead, FO4

    /**
     * EXTENSION beyond the paper's Eq. 1: constant-absolute-time
     * stall per instruction (FO4), modeling off-chip memory waits,
     * whose duration does not depend on the pipeline depth. The
     * paper's model is recovered with c_mem = 0 (the default); the
     * exact optimality conditions of OptimumSolver handle either
     * case (see optimum_solver.hh).
     */
    double c_mem = 0.0;

    /** Validate ranges; aborts (fatal) on nonsense values. */
    void validate() const;
};

/** Clock gating mode of the power model (Eq. 3 and Sec. 2). */
enum class ClockGating
{
    /** No gating: every latch switches every cycle (f_cg = 1). */
    None,
    /**
     * Fine-grained gating: latches switch only with work, so the
     * effective switching rate follows instruction throughput; the
     * paper's substitution f_cg * f_s -> (T/N_I)^-1.
     */
    FineGrained,
};

/**
 * Power parameters of the Srinivasan-style latch power model (Eq. 3).
 * P_d is the dynamic energy per latch per switching event (units:
 * W * FO4-time); P_l is the standing leakage power per latch (W). The
 * two deliberately have different units, as in the paper, because P_d
 * is always multiplied by a rate.
 */
struct PowerParams
{
    double p_d = 1.0;         //!< dynamic energy / latch / switch
    double p_l = 0.05;        //!< leakage power / latch
    double n_l = 1000.0;      //!< latches per stage at p = 1
    double beta = 1.3;        //!< latch growth exponent
    ClockGating gating = ClockGating::FineGrained;
    double f_cg = 1.0;        //!< constant gating factor when not fine-grained

    /** Validate ranges; aborts (fatal) on nonsense values. */
    void validate() const;
};

/** Convenient names for the metric family BIPS^m/W studied here. */
struct MetricExponent
{
    static constexpr double bips_per_watt = 1.0;   //!< BIPS/W
    static constexpr double bips2_per_watt = 2.0;  //!< BIPS^2/W
    static constexpr double bips3_per_watt = 3.0;  //!< BIPS^3/W (ED^2-like)
};

/** Render a gating mode for reports. */
std::string toString(ClockGating gating);

} // namespace pipedepth

#endif // PIPEDEPTH_CORE_PARAMS_HH
