#include "core/performance_model.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace pipedepth
{

PerformanceModel::PerformanceModel(const MachineParams &params)
    : params_(params)
{
    params_.validate();
}

double
PerformanceModel::cycleTime(double p) const
{
    PP_ASSERT(p > 0.0, "depth must be positive");
    return params_.t_o + params_.t_p / p;
}

double
PerformanceModel::timePerInstruction(double p) const
{
    PP_ASSERT(p > 0.0, "depth must be positive");
    const double busy = (params_.t_o + params_.t_p / p) / params_.alpha;
    const double hazard = params_.gamma * params_.hazard_ratio *
                          (params_.t_o * p + params_.t_p);
    return busy + hazard + params_.c_mem;
}

double
PerformanceModel::throughput(double p) const
{
    return 1.0 / timePerInstruction(p);
}

double
PerformanceModel::timeDerivative(double p) const
{
    PP_ASSERT(p > 0.0, "depth must be positive");
    return -params_.t_p / (params_.alpha * p * p) +
           params_.gamma * params_.hazard_ratio * params_.t_o;
}

double
PerformanceModel::cpi(double p) const
{
    return timePerInstruction(p) / cycleTime(p);
}

double
PerformanceModel::performanceOnlyOptimum() const
{
    const double denom = params_.alpha * params_.gamma *
                         params_.hazard_ratio * params_.t_o;
    if (denom <= 0.0)
        return std::numeric_limits<double>::infinity();
    return std::sqrt(params_.t_p / denom);
}

} // namespace pipedepth
