/**
 * @file
 * The Hartstein-Puzak pipeline performance model (paper Eq. 1 and 2).
 */

#ifndef PIPEDEPTH_CORE_PERFORMANCE_MODEL_HH
#define PIPEDEPTH_CORE_PERFORMANCE_MODEL_HH

#include "core/params.hh"

namespace pipedepth
{

/**
 * Analytic performance of a p-stage pipeline for a workload described
 * by MachineParams.
 *
 * Eq. 1:  T/N_I = (1/alpha)(t_o + t_p/p)
 *                 + gamma * (N_H/N_I) * (t_o * p + t_p)  [+ c_mem]
 *
 * The first term is the busy (steady-flow) time per instruction; the
 * second is the hazard penalty, which grows with depth because each
 * hazard drains a pipeline whose fill time is p * t_s = t_o*p + t_p.
 * The optional c_mem term (an extension; 0 in the paper's model) adds
 * a depth-independent absolute-time stall per instruction for
 * off-chip memory waits.
 */
class PerformanceModel
{
  public:
    explicit PerformanceModel(const MachineParams &params);

    /** Time per instruction (FO4 units) at depth p (Eq. 1). */
    double timePerInstruction(double p) const;

    /**
     * Instruction throughput 1 / (T/N_I) in instructions per FO4-time.
     * Proportional to BIPS; the paper treats the scale factor as
     * absorbed into the metric normalization.
     */
    double throughput(double p) const;

    /** d(T/N_I)/dp, used by optimality conditions and tests. */
    double timeDerivative(double p) const;

    /** Cycle time t_s = t_o + t_p/p (FO4). */
    double cycleTime(double p) const;

    /** Cycles per instruction implied by the model at depth p. */
    double cpi(double p) const;

    /**
     * Performance-only optimum depth (Eq. 2):
     * p_opt = sqrt(N_I * t_p / (alpha * gamma * N_H * t_o)).
     * Infinite when hazard_ratio == 0 (deeper is always better).
     */
    double performanceOnlyOptimum() const;

    const MachineParams &params() const { return params_; }

  private:
    MachineParams params_;
};

} // namespace pipedepth

#endif // PIPEDEPTH_CORE_PERFORMANCE_MODEL_HH
