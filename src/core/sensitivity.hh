/**
 * @file
 * Sensitivity of the optimum pipeline depth to model parameters.
 *
 * Section 2.2 of the paper discusses how p_opt moves with N_H, gamma,
 * alpha, t_p/t_o, leakage, and the exponents m and beta. This module
 * quantifies those dependencies as elasticities
 * (d ln p_opt / d ln theta) computed by central differences on the
 * exact solver, so examples and tests can assert the paper's stated
 * directions of change.
 */

#ifndef PIPEDEPTH_CORE_SENSITIVITY_HH
#define PIPEDEPTH_CORE_SENSITIVITY_HH

#include <string>
#include <vector>

#include "core/params.hh"

namespace pipedepth
{

/** One parameter's effect on p_opt. */
struct Sensitivity
{
    std::string parameter; //!< parameter name
    double elasticity = 0.0; //!< d ln p_opt / d ln theta at the baseline
};

/**
 * Elasticities of the optimum depth with respect to every model
 * parameter, at the given baseline and metric exponent m. Parameters
 * covered: alpha, gamma, hazard_ratio, t_p, t_o, p_d, p_l, beta, m.
 *
 * Baselines where no interior optimum exists yield an empty vector.
 */
std::vector<Sensitivity> optimumSensitivities(const MachineParams &machine,
                                              const PowerParams &power,
                                              double m,
                                              double rel_step = 0.02);

} // namespace pipedepth

#endif // PIPEDEPTH_CORE_SENSITIVITY_HH
