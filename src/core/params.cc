#include "core/params.hh"

#include <cmath>

#include "common/logging.hh"

namespace pipedepth
{

namespace
{

/**
 * Every range check below has the shape "fatal unless lo OP v"; a NaN
 * makes all of those comparisons false, so an unguarded check chain
 * would accept it. Reject non-finite values first, by field name.
 */
void
checkFinite(double v, const char *what)
{
    if (!std::isfinite(v))
        PP_FATAL(what, " must be finite (got ", v, ")");
}

} // namespace

void
MachineParams::validate() const
{
    checkFinite(alpha, "alpha");
    checkFinite(gamma, "gamma");
    checkFinite(hazard_ratio, "hazard_ratio");
    checkFinite(t_p, "t_p");
    checkFinite(t_o, "t_o");
    checkFinite(c_mem, "c_mem");
    if (alpha < 1.0)
        PP_FATAL("alpha must be >= 1 (got ", alpha, ")");
    if (gamma <= 0.0 || gamma > 1.0)
        PP_FATAL("gamma must be in (0, 1] (got ", gamma, ")");
    if (hazard_ratio < 0.0)
        PP_FATAL("hazard_ratio must be >= 0 (got ", hazard_ratio, ")");
    if (t_p <= 0.0)
        PP_FATAL("t_p must be positive (got ", t_p, ")");
    if (t_o <= 0.0)
        PP_FATAL("t_o must be positive (got ", t_o, ")");
    if (c_mem < 0.0)
        PP_FATAL("c_mem must be >= 0 (got ", c_mem, ")");
}

void
PowerParams::validate() const
{
    checkFinite(p_d, "p_d");
    checkFinite(p_l, "p_l");
    checkFinite(n_l, "n_l");
    checkFinite(beta, "beta");
    checkFinite(f_cg, "f_cg");
    if (p_d < 0.0)
        PP_FATAL("p_d must be >= 0 (got ", p_d, ")");
    if (p_l < 0.0)
        PP_FATAL("p_l must be >= 0 (got ", p_l, ")");
    if (p_d == 0.0 && p_l == 0.0)
        PP_FATAL("p_d and p_l cannot both be zero");
    if (n_l <= 0.0)
        PP_FATAL("n_l must be positive (got ", n_l, ")");
    if (beta <= 0.0)
        PP_FATAL("beta must be positive (got ", beta, ")");
    if (f_cg <= 0.0 || f_cg > 1.0)
        PP_FATAL("f_cg must be in (0, 1] (got ", f_cg, ")");
}

std::string
toString(ClockGating gating)
{
    switch (gating) {
      case ClockGating::None:
        return "non-clock-gated";
      case ClockGating::FineGrained:
        return "clock-gated";
    }
    return "unknown";
}

} // namespace pipedepth
