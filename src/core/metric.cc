#include "core/metric.hh"

#include <cmath>

#include "common/logging.hh"

namespace pipedepth
{

PowerPerformanceMetric::PowerPerformanceMetric(const MachineParams &machine,
                                               const PowerParams &power,
                                               double m)
    : perf_(machine), power_(machine, power), m_(m)
{
    if (m <= 0.0)
        PP_FATAL("metric exponent m must be positive (got ", m, ")");
}

double
PowerPerformanceMetric::logValue(double p) const
{
    const double tau = perf_.timePerInstruction(p);
    const double pt = power_.totalPower(p);
    PP_ASSERT(tau > 0.0 && pt > 0.0, "model produced non-positive values");
    return -(m_ * std::log(tau) + std::log(pt));
}

double
PowerPerformanceMetric::operator()(double p) const
{
    return std::exp(logValue(p));
}

} // namespace pipedepth
