/**
 * @file
 * The latch-dominated processor power model (paper Eq. 3, after
 * Srinivasan et al., MICRO 2002).
 */

#ifndef PIPEDEPTH_CORE_POWER_MODEL_HH
#define PIPEDEPTH_CORE_POWER_MODEL_HH

#include "core/params.hh"
#include "core/performance_model.hh"

namespace pipedepth
{

/**
 * Total processor power as a function of pipeline depth.
 *
 * Eq. 3:  P_T = (f_cg * f_s * P_d + P_l) * N_L * p^beta
 *
 * with f_s = 1/(t_o + t_p/p). Under fine-grained clock gating the
 * effective switching rate follows instruction throughput rather than
 * clock frequency (the paper's substitution f_cg * f_s -> (T/N_I)^-1),
 * so this model needs the performance model for the gated case.
 */
class PowerModel
{
  public:
    PowerModel(const MachineParams &machine, const PowerParams &power);

    /** Total power at depth p (Eq. 3), honoring the gating mode. */
    double totalPower(double p) const;

    /** Dynamic component of totalPower(p). */
    double dynamicPower(double p) const;

    /** Leakage component of totalPower(p). */
    double leakagePower(double p) const;

    /** Fraction of total power that is leakage at depth p. */
    double leakageFraction(double p) const;

    /** Latch count N_L * p^beta at depth p. */
    double latchCount(double p) const;

    /** Effective per-latch switching rate (1/FO4-time) at depth p. */
    double switchingRate(double p) const;

    const PowerParams &powerParams() const { return power_; }
    const PerformanceModel &perf() const { return perf_; }

    /**
     * Choose P_l so that leakage is @p fraction of total power at
     * reference depth @p p_ref, keeping P_d fixed — the paper assumes
     * "leakage power accounts for 15% of the power usage" (Sec. 4).
     * Returns a modified copy of @p power.
     */
    static PowerParams calibrateLeakage(const MachineParams &machine,
                                        PowerParams power, double fraction,
                                        double p_ref);

  private:
    PerformanceModel perf_;
    PowerParams power_;
};

} // namespace pipedepth

#endif // PIPEDEPTH_CORE_POWER_MODEL_HH
