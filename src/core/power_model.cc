#include "core/power_model.hh"

#include <cmath>

#include "common/logging.hh"

namespace pipedepth
{

PowerModel::PowerModel(const MachineParams &machine,
                       const PowerParams &power)
    : perf_(machine), power_(power)
{
    power_.validate();
}

double
PowerModel::latchCount(double p) const
{
    PP_ASSERT(p > 0.0, "depth must be positive");
    return power_.n_l * std::pow(p, power_.beta);
}

double
PowerModel::switchingRate(double p) const
{
    switch (power_.gating) {
      case ClockGating::None:
        // f_cg * f_s with a constant gating factor.
        return power_.f_cg / perf_.cycleTime(p);
      case ClockGating::FineGrained:
        // Latches switch with work: rate follows throughput,
        // f_cg * f_s -> (T/N_I)^-1.
        return perf_.throughput(p);
    }
    PP_PANIC("unknown gating mode");
}

double
PowerModel::dynamicPower(double p) const
{
    return power_.p_d * switchingRate(p) * latchCount(p);
}

double
PowerModel::leakagePower(double p) const
{
    return power_.p_l * latchCount(p);
}

double
PowerModel::totalPower(double p) const
{
    return dynamicPower(p) + leakagePower(p);
}

double
PowerModel::leakageFraction(double p) const
{
    const double total = totalPower(p);
    PP_ASSERT(total > 0.0, "zero total power");
    return leakagePower(p) / total;
}

PowerParams
PowerModel::calibrateLeakage(const MachineParams &machine,
                             PowerParams power, double fraction,
                             double p_ref)
{
    if (fraction < 0.0 || fraction >= 1.0)
        PP_FATAL("leakage fraction must be in [0, 1) (got ", fraction, ")");
    PP_ASSERT(p_ref > 0.0, "reference depth must be positive");

    // Per-latch dynamic power at the reference point; P_l follows from
    // P_l / (dyn + P_l) = fraction.
    power.p_l = 0.0;
    const PowerModel base(machine, power);
    const double dyn_per_latch = power.p_d * base.switchingRate(p_ref);
    power.p_l = fraction / (1.0 - fraction) * dyn_per_latch;
    return power;
}

} // namespace pipedepth
