#include "core/optimum_solver.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "math/optimize.hh"
#include "math/roots.hh"

namespace pipedepth
{

OptimumSolver::OptimumSolver(const MachineParams &machine,
                             const PowerParams &power)
    : machine_(machine), power_(power)
{
    machine_.validate();
    power_.validate();
}

Poly
OptimumSolver::ungatedCubic(double m) const
{
    // The paper's model (c_mem = 0): tau factors as s*u/(alpha p) and
    // the condition reduces to a cubic (see the header derivation).
    const double a = machine_.alpha * machine_.gamma *
                     machine_.hazard_ratio;
    const double t_p = machine_.t_p;
    const double t_o = machine_.t_o;
    const double pd = power_.f_cg * power_.p_d;
    const double c = pd + power_.p_l * t_o;
    const double d = power_.p_l * t_p;

    const Poly s{t_p, t_o};
    const Poly u{1.0, a};
    const Poly q{d, c};
    const Poly w{-t_p, 0.0, a * t_o}; // a t_o p^2 - t_p
    const Poly p1{0.0, 1.0};

    return m * (q * w) + s * u * (power_.beta * q + c * p1) -
           t_o * (p1 * u * q);
}

Poly
OptimumSolver::numeratorN() const
{
    // alpha * p * tau(p): quadratic. With c_mem = 0 this is s*u; the
    // constant-time extension adds alpha*c_mem*p to the linear term,
    // which leaves N'p - N = a t_o p^2 - t_p unchanged.
    const double a = machine_.alpha * machine_.gamma *
                     machine_.hazard_ratio;
    const Poly s{machine_.t_p, machine_.t_o};
    const Poly u{1.0, a};
    return s * u + Poly{0.0, machine_.alpha * machine_.c_mem};
}

Poly
OptimumSolver::ungatedQuartic(double m) const
{
    // General (c_mem >= 0) non-gated condition:
    //   m w Q s + beta N Q s + c p N s - t_o p N Q = 0,
    // which factors as (t_o p + t_p) * ungatedCubic when c_mem = 0.
    const double a = machine_.alpha * machine_.gamma *
                     machine_.hazard_ratio;
    const double t_p = machine_.t_p;
    const double t_o = machine_.t_o;
    const double pd = power_.f_cg * power_.p_d;
    const double c = pd + power_.p_l * t_o;
    const double d = power_.p_l * t_p;

    const Poly s{t_p, t_o};
    const Poly q{d, c};
    const Poly w{-t_p, 0.0, a * t_o};
    const Poly p1{0.0, 1.0};
    const Poly n = numeratorN();

    return m * (w * q * s) + power_.beta * (n * q * s) +
           c * (p1 * n * s) - t_o * (p1 * n * q);
}

Poly
OptimumSolver::gatedQuartic(double m) const
{
    const double a = machine_.alpha * machine_.gamma *
                     machine_.hazard_ratio;
    const double t_p = machine_.t_p;
    const double t_o = machine_.t_o;

    const Poly w{-t_p, 0.0, a * t_o}; // a t_o p^2 - t_p = N'p - N
    const Poly p1{0.0, 1.0};
    const Poly n = numeratorN();
    const Poly r = machine_.alpha * power_.p_d * p1 + power_.p_l * n;

    return power_.beta * (n * r) + (m - 1.0) * (w * r) +
           power_.p_l * (w * n);
}

Poly
OptimumSolver::optimalityPolynomial(double m) const
{
    switch (power_.gating) {
      case ClockGating::None:
        return ungatedQuartic(m);
      case ClockGating::FineGrained:
        return gatedQuartic(m);
    }
    PP_PANIC("unknown gating mode");
}

Poly
OptimumSolver::paperQuartic(double m) const
{
    // The paper's Eq. 5 (its model has no constant-time term).
    return ungatedCubic(m) * Poly{machine_.t_p, machine_.t_o};
}

std::optional<double>
OptimumSolver::paperQuadraticRoot(double m) const
{
    // The paper obtains Eq. 7 by factoring the approximate root Eq. 6b
    // (p ~ -d/c = -t_p P_l / (P_d' + t_o P_l)) out of the quartic,
    // after the exact factor Eq. 6a. Equivalently: deflate our exact
    // cubic E(p) at -d/c and keep the quadratic quotient, discarding
    // the (small) remainder. In the leakage-free limit the deflation
    // is exact and the quotient reduces to
    //   a t_o (m + beta) p^2 + [beta t_o + (beta+1) a t_p] p
    //     - (m - beta - 1) t_p = 0,   a = alpha gamma N_H/N_I,
    // which matches the structure of the paper's printed Eq. 8 (the
    // OCR of the paper drops the fraction bars around alpha; the
    // printed coefficients are recovered after dividing through by
    // alpha).
    const double pd = power_.f_cg * power_.p_d;
    const double c = pd + power_.p_l * machine_.t_o;
    const double d = power_.p_l * machine_.t_p;

    const Poly cubic = ungatedCubic(m);
    if (cubic.degree() < 3)
        return std::nullopt;
    const Poly quad = cubic.deflate(-d / c);

    const double b2 = quad.coeff(2);
    const double b1 = quad.coeff(1);
    const double b0 = quad.coeff(0);

    const double disc = b1 * b1 - 4.0 * b2 * b0;
    if (disc < 0.0)
        return std::nullopt;
    if (b2 == 0.0) {
        if (b1 == 0.0)
            return std::nullopt;
        const double root = -b0 / b1;
        return root > 0.0 ? std::optional<double>(root) : std::nullopt;
    }
    const double sq = std::sqrt(disc);
    const double r1 = (-b1 + sq) / (2.0 * b2);
    const double r2 = (-b1 - sq) / (2.0 * b2);
    // A physically meaningful optimum has exactly one positive root
    // (paper Sec. 2); if both are positive (degenerate parameters),
    // prefer the one where the metric is locally maximal.
    if (r1 > 0.0 && r2 > 0.0) {
        const PowerPerformanceMetric metric(machine_, power_, m);
        return metric.logValue(r1) >= metric.logValue(r2) ? r1 : r2;
    }
    if (r1 > 0.0)
        return r1;
    if (r2 > 0.0)
        return r2;
    return std::nullopt;
}

double
OptimumSolver::spuriousRootA() const
{
    return -machine_.t_p / machine_.t_o;
}

double
OptimumSolver::spuriousRootB() const
{
    return -machine_.t_p * power_.p_l /
           (power_.p_d + machine_.t_o * power_.p_l);
}

OptimumResult
OptimumSolver::solveExact(double m) const
{
    const PowerPerformanceMetric metric(machine_, power_, m);
    const Poly cond = optimalityPolynomial(m);

    OptimumResult out;
    out.p_opt = 1.0;
    out.interior = false;

    double best_log = metric.logValue(1.0);
    if (cond.degree() >= 1) {
        for (double r : realRoots(cond)) {
            if (r <= 1.0)
                continue;
            // Screen for a genuine local maximum of the metric.
            const double eps = std::max(1e-6, r * 1e-6);
            const double here = metric.logValue(r);
            if (metric.logValue(r - eps) > here ||
                metric.logValue(r + eps) > here) {
                continue;
            }
            if (here > best_log) {
                best_log = here;
                out.p_opt = r;
                out.interior = true;
            }
        }
    }
    out.metric = metric(out.p_opt);
    out.fo4_per_stage = machine_.t_o + machine_.t_p / out.p_opt;
    return out;
}

OptimumResult
OptimumSolver::solveNumeric(double m, double p_max) const
{
    PP_ASSERT(p_max > 1.0, "p_max must exceed 1");
    const PowerPerformanceMetric metric(machine_, power_, m);
    auto f = [&metric](double p) { return metric.logValue(p); };
    const ScalarMax sm = maximizeScan(f, 1.0, p_max, 800);

    OptimumResult out;
    out.p_opt = sm.interior ? sm.x : (metric.logValue(1.0) >=
                                      metric.logValue(p_max)
                                          ? 1.0
                                          : p_max);
    out.interior = sm.interior;
    out.metric = metric(out.p_opt);
    out.fo4_per_stage = machine_.t_o + machine_.t_p / out.p_opt;
    return out;
}

} // namespace pipedepth
