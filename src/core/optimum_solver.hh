/**
 * @file
 * Solvers for the optimum power/performance pipeline depth.
 *
 * The paper forms d(Metric)/dp = 0 and obtains a quartic (Eq. 5) whose
 * single positive root is the optimum. We re-derive the condition
 * symbolically. Write
 *
 *   G = gamma * N_H/N_I,   a = alpha * G,
 *   s(p) = t_o p + t_p     (p times the cycle time),
 *   u(p) = 1 + a p,
 *
 * so Eq. 1 factors as tau(p) = T/N_I = s u / (alpha p). For the
 * non-gated power model, P_T ~ p^beta (P_d' p + P_l s)/s with
 * P_d' = f_cg P_d; setting d/dp log(tau^m P_T) = 0 and clearing
 * denominators gives the exact *cubic*
 *
 *   E(p) = m Q (a t_o p^2 - t_p) + s u (beta Q + c p) - t_o p u Q = 0,
 *   where c = P_d' + P_l t_o,  d = P_l t_p,  Q(p) = c p + d.
 *
 * The paper's quartic Eq. 5 is exactly E(p) * s(p): the extra factor
 * contributes the spurious root p = -t_p/t_o (the paper's Eq. 6a,
 * which they later factor back out), and Q ~ 0 gives the paper's
 * approximate root Eq. 6b, p ~ -d/c = -t_p P_l / (P_d + t_o P_l).
 *
 * For fine-grained clock gating (f_cg f_s -> 1/tau) the same procedure
 * gives the exact quartic
 *
 *   E_cg(p) = beta s u R + (m-1)(a t_o p^2 - t_p) R
 *             + P_l (a t_o p^2 - t_p) s u = 0,
 *   where R(p) = alpha P_d p + P_l s u.
 *
 * Both are built with Poly arithmetic from the factor polynomials, so
 * there are no hand-expanded coefficients to get wrong; tests verify
 * the roots against direct numerical optimization of the metric and
 * against the paper's approximate quadratic (Eq. 7).
 */

#ifndef PIPEDEPTH_CORE_OPTIMUM_SOLVER_HH
#define PIPEDEPTH_CORE_OPTIMUM_SOLVER_HH

#include <optional>
#include <vector>

#include "core/metric.hh"
#include "core/params.hh"
#include "math/poly.hh"

namespace pipedepth
{

/** Outcome of an optimum-depth computation. */
struct OptimumResult
{
    /** Optimal depth clamped to >= 1 (1 means "do not pipeline"). */
    double p_opt = 1.0;
    /** True iff a genuine pipelined optimum (> 1 stage) exists. */
    bool interior = false;
    /** Metric value at p_opt. */
    double metric = 0.0;
    /** Cycle time at p_opt in FO4 (the paper's "design point"). */
    double fo4_per_stage = 0.0;
};

/**
 * Computes the optimum pipeline depth for a metric BIPS^m/W by three
 * routes: the exact polynomial condition, direct numeric optimization,
 * and the paper's approximate quadratic.
 */
class OptimumSolver
{
  public:
    OptimumSolver(const MachineParams &machine, const PowerParams &power);

    /**
     * Exact polynomial optimality condition for the configured gating
     * mode (see file comment). With the constant-time extension
     * (MachineParams::c_mem > 0) both gating modes give quartics in
     * N(p) = s u + alpha c_mem p; with c_mem = 0 the non-gated
     * quartic factors as (t_o p + t_p) times the paper's cubic.
     */
    Poly optimalityPolynomial(double m) const;

    /**
     * The paper's Eq. 5 quartic: E(p) * (t_o p + t_p), in the
     * non-gated formulation regardless of the configured mode. Used to
     * reproduce Fig. 1 (four real zero crossings, one positive).
     */
    Poly paperQuartic(double m) const;

    /**
     * The paper's approximate quadratic Eq. 7/8: the quartic with the
     * factor roots Eq. 6a (exact) and Eq. 6b (approximate) divided
     * out. We construct it by deflating the exact cubic at the Eq. 6b
     * root, which reduces to the paper's printed coefficients in the
     * low-leakage limit (see the .cc for the correspondence and a note
     * on an OCR ambiguity in the paper's alpha placement). Returns the
     * positive root, or nullopt when none exists (no pipelined
     * optimum).
     */
    std::optional<double> paperQuadraticRoot(double m) const;

    /**
     * Optimum via the exact polynomial: positive roots are screened
     * for being local maxima of the metric and the best is returned.
     * Roots at or below depth 1 mean the unpipelined design wins.
     */
    OptimumResult solveExact(double m) const;

    /**
     * Optimum via direct numeric maximization of the metric over
     * [1, p_max]. Independent of the polynomial derivation; tests
     * require agreement with solveExact.
     */
    OptimumResult solveNumeric(double m, double p_max = 64.0) const;

    /**
     * Eq. 6a: the exact negative factor root -t_p/t_o of the paper's
     * quartic.
     */
    double spuriousRootA() const;

    /**
     * Eq. 6b: the approximate negative root
     * -t_p P_l / (P_d + t_o P_l).
     */
    double spuriousRootB() const;

    /**
     * Necessary existence condition from A_0 < 0: m > beta. (When
     * leakage is negligible the binding condition tightens to
     * m > 2 beta, from the A_3 coefficient; with fine-grained gating
     * and no leakage it is m > beta + 1.)
     */
    static bool necessaryCondition(double m, double beta)
    {
        return m > beta;
    }

    const MachineParams &machine() const { return machine_; }
    const PowerParams &power() const { return power_; }

  private:
    /** Build the paper-model (c_mem = 0) non-gated cubic E(p). */
    Poly ungatedCubic(double m) const;

    /** Build the general non-gated quartic (handles c_mem). */
    Poly ungatedQuartic(double m) const;

    /** Build the gated exact quartic E_cg(p) (handles c_mem). */
    Poly gatedQuartic(double m) const;

    /** N(p) = alpha p tau(p): quadratic numerator of tau. */
    Poly numeratorN() const;

    MachineParams machine_;
    PowerParams power_;
};

} // namespace pipedepth

#endif // PIPEDEPTH_CORE_OPTIMUM_SOLVER_HH
