#include "core/sensitivity.hh"

#include <cmath>
#include <functional>

#include "common/logging.hh"
#include "core/optimum_solver.hh"

namespace pipedepth
{

namespace
{

/**
 * Central-difference elasticity of p_opt with respect to one scalar
 * accessed through @p set on copies of the baseline parameters.
 */
double
elasticity(const MachineParams &machine, const PowerParams &power, double m,
           double baseline_value, double rel_step,
           const std::function<void(MachineParams &, PowerParams &, double &,
                                    double)> &set)
{
    const double h = baseline_value * rel_step;
    PP_ASSERT(h != 0.0, "zero baseline in sensitivity analysis");

    auto solve_at = [&](double value) {
        MachineParams mp = machine;
        PowerParams pp = power;
        double mm = m;
        set(mp, pp, mm, value);
        const OptimumSolver solver(mp, pp);
        return solver.solveNumeric(mm);
    };

    const OptimumResult up = solve_at(baseline_value + h);
    const OptimumResult down = solve_at(baseline_value - h);
    if (!up.interior || !down.interior)
        return std::nan("");
    const double dlnp = std::log(up.p_opt) - std::log(down.p_opt);
    const double dlnt = std::log(baseline_value + h) -
                        std::log(baseline_value - h);
    return dlnp / dlnt;
}

} // namespace

std::vector<Sensitivity>
optimumSensitivities(const MachineParams &machine, const PowerParams &power,
                     double m, double rel_step)
{
    const OptimumSolver solver(machine, power);
    if (!solver.solveNumeric(m).interior)
        return {};

    std::vector<Sensitivity> out;
    auto add = [&](const std::string &name, double base,
                   std::function<void(MachineParams &, PowerParams &,
                                      double &, double)>
                       set) {
        out.push_back(
            {name, elasticity(machine, power, m, base, rel_step, set)});
    };

    add("alpha", machine.alpha,
        [](MachineParams &mp, PowerParams &, double &, double v) {
            mp.alpha = v;
        });
    add("gamma", machine.gamma,
        [](MachineParams &mp, PowerParams &, double &, double v) {
            mp.gamma = v;
        });
    add("hazard_ratio", machine.hazard_ratio,
        [](MachineParams &mp, PowerParams &, double &, double v) {
            mp.hazard_ratio = v;
        });
    add("t_p", machine.t_p,
        [](MachineParams &mp, PowerParams &, double &, double v) {
            mp.t_p = v;
        });
    add("t_o", machine.t_o,
        [](MachineParams &mp, PowerParams &, double &, double v) {
            mp.t_o = v;
        });
    add("p_d", power.p_d,
        [](MachineParams &, PowerParams &pp, double &, double v) {
            pp.p_d = v;
        });
    if (power.p_l > 0.0) {
        add("p_l", power.p_l,
            [](MachineParams &, PowerParams &pp, double &, double v) {
                pp.p_l = v;
            });
    }
    add("beta", power.beta,
        [](MachineParams &, PowerParams &pp, double &, double v) {
            pp.beta = v;
        });
    add("m", m,
        [](MachineParams &, PowerParams &, double &mm, double v) {
            mm = v;
        });
    return out;
}

} // namespace pipedepth
