/**
 * @file
 * The generalized power/performance metric BIPS^m / W (paper Eq. 4).
 */

#ifndef PIPEDEPTH_CORE_METRIC_HH
#define PIPEDEPTH_CORE_METRIC_HH

#include "core/params.hh"
#include "core/performance_model.hh"
#include "core/power_model.hh"

namespace pipedepth
{

/**
 * Metric(p) = ((T/N_I)^m * P_T)^-1 = BIPS^m / W, within a scale
 * factor (Eq. 4). m = 1, 2, 3 give BIPS/W, BIPS^2/W, BIPS^3/W; the
 * m -> infinity limit is performance-only optimization (BIPS).
 */
class PowerPerformanceMetric
{
  public:
    /**
     * @param machine workload/technology parameters
     * @param power   power parameters (including gating mode)
     * @param m       metric exponent (must be > 0)
     */
    PowerPerformanceMetric(const MachineParams &machine,
                           const PowerParams &power, double m);

    /** Metric value at depth p (arbitrary consistent units). */
    double operator()(double p) const;

    /** log(Metric) at depth p; avoids overflow for large m. */
    double logValue(double p) const;

    /** The metric exponent m. */
    double exponent() const { return m_; }

    const PerformanceModel &perf() const { return perf_; }
    const PowerModel &power() const { return power_; }

  private:
    PerformanceModel perf_;
    PowerModel power_;
    double m_;
};

} // namespace pipedepth

#endif // PIPEDEPTH_CORE_METRIC_HH
