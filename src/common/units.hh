/**
 * @file
 * Technology-unit helpers.
 *
 * All circuit timing in this library is expressed in FO4 (fan-out-of-4
 * inverter) delays, as in the paper, so results are
 * technology-independent. These helpers convert between per-stage FO4
 * budgets, pipeline depths and (given an absolute FO4 delay in
 * picoseconds) real frequencies.
 */

#ifndef PIPEDEPTH_COMMON_UNITS_HH
#define PIPEDEPTH_COMMON_UNITS_HH

#include "common/logging.hh"

namespace pipedepth
{

/**
 * Cycle time (in FO4) for a design with @p stages pipeline stages,
 * total logic depth @p t_p and per-stage latch overhead @p t_o.
 */
inline double
cycleTimeFo4(double stages, double t_p, double t_o)
{
    PP_ASSERT(stages > 0.0, "pipeline depth must be positive");
    return t_o + t_p / stages;
}

/**
 * Frequency in cycles per FO4-unit time: f_s = 1 / t_s (paper Sec. 2).
 */
inline double
frequencyPerFo4(double stages, double t_p, double t_o)
{
    return 1.0 / cycleTimeFo4(stages, t_p, t_o);
}

/**
 * Pipeline depth that yields a given per-stage cycle time (FO4).
 * Inverse of cycleTimeFo4; the paper quotes design points both ways
 * (e.g. "7 stages, a 22.5 FO4 design point").
 */
inline double
stagesForCycleTime(double fo4_per_stage, double t_p, double t_o)
{
    PP_ASSERT(fo4_per_stage > t_o,
              "cycle time must exceed latch overhead t_o");
    return t_p / (fo4_per_stage - t_o);
}

/** Convert a frequency expressed per-FO4 into GHz given FO4 in ps. */
inline double
frequencyGhz(double per_fo4, double fo4_ps)
{
    PP_ASSERT(fo4_ps > 0.0, "FO4 delay must be positive");
    return per_fo4 * 1000.0 / fo4_ps;
}

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_UNITS_HH
