/**
 * @file
 * Locale-independent numeric conversions.
 *
 * std::strtod and printf's %g family honor LC_NUMERIC: under a
 * comma-decimal locale (e.g. LC_NUMERIC=de_DE) "1.5" stops parsing at
 * the '.' and 1.5 prints as "1,5". Every serialized number in this
 * codebase — JSON wire traffic, manifests, checkpoints, cache-adjacent
 * metadata, failpoint probability specs — is defined over the C
 * locale's '.' separator, so those call sites must not pick up the
 * process locale. These helpers convert through std::from_chars /
 * std::to_chars, which the standard specifies as locale-independent,
 * and they are what common/json and common/failpoint build on.
 */

#ifndef PIPEDEPTH_COMMON_NUMERIC_HH
#define PIPEDEPTH_COMMON_NUMERIC_HH

#include <cstddef>
#include <string>

namespace pipedepth
{

/**
 * Parse a double from [@p begin, @p end) exactly as strtod would in
 * the "C" locale ('.' decimal separator, optional exponent), in any
 * process locale. No leading whitespace or 0x forms are accepted.
 *
 * Out-of-range literals keep strtod's tolerance: an underflow
 * ("1e-999") parses as 0.0 and an overflow ("1e999") as ±infinity,
 * with the whole literal consumed — a producer emitting an extreme
 * value must not make the consumer reject the document as malformed.
 *
 * @param parse_end when non-null, receives a pointer one past the
 *        last character consumed (== @p begin on failure).
 * @return true iff at least one character parsed as a number.
 */
bool parseDoubleC(const char *begin, const char *end, double *out,
                  const char **parse_end = nullptr);

/**
 * Parse a whole NUL-delimited string as a double, rejecting trailing
 * garbage: "0.5x" and "0,5" both fail. Convenience over parseDoubleC
 * for spec parsers (failpoints).
 */
bool parseDoubleFullC(const std::string &text, double *out);

/**
 * Format @p v with @p precision significant digits, like printf
 * "%.*g" in the "C" locale, in any process locale.
 */
std::string formatDoubleC(double v, int precision);

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_NUMERIC_HH
