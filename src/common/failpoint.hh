/**
 * @file
 * Deterministic fault injection (docs/RELIABILITY.md).
 *
 * A *failpoint* is a named site in the code where a fault — an I/O
 * error, a crashed simulation, a failed thread spawn — can be
 * injected on demand. Sites are compiled in unconditionally and cost
 * one relaxed atomic load when no failpoint is armed, so production
 * binaries carry the exact code paths the reliability suite tests.
 *
 * Two site flavours:
 *
 *  - PP_FAILPOINT(name) throws FailpointError when the site fires.
 *    Used where a real fault would surface as an exception (a cell
 *    simulation dying mid-run).
 *  - PP_FAILPOINT_FIRED(name) returns true when the site fires. Used
 *    where a real fault surfaces as an error return (a failed write,
 *    rename or spawn), so the injected fault exercises the *same*
 *    degradation path the genuine error would.
 *
 * Activation is a spec string, from the PIPEDEPTH_FAILPOINTS
 * environment variable or `pipesim --failpoint`:
 *
 *     site=mode[;site=mode...]
 *
 * with modes
 *
 *     off          never fires
 *     always       every hit fires
 *     once         the first hit fires
 *     every:N      hits N, 2N, 3N, ... fire (1-based)
 *     hits:A,B,C   exactly hits A, B and C fire (1-based)
 *     p:F          each hit fires with probability F, decided by a
 *                  seeded per-site hash of the hit index
 *
 * Every mode is deterministic given the seed (PIPEDEPTH_FAILPOINT_SEED
 * or setSeed): the decision for the Nth hit of a site is a pure
 * function of (seed, site, N), so a failing run replays exactly under
 * the same hit ordering (single-threaded runs replay bit-for-bit;
 * multi-threaded runs fire the same decisions at the same per-site
 * hit indices, whichever cells draw them).
 *
 * Thread-safety: hits may race freely; configure/reset are for the
 * main thread (tests use ScopedFailpoints around the racing code).
 */

#ifndef PIPEDEPTH_COMMON_FAILPOINT_HH
#define PIPEDEPTH_COMMON_FAILPOINT_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace pipedepth
{

/** The exception an armed PP_FAILPOINT site throws. */
class FailpointError : public std::runtime_error
{
  public:
    explicit FailpointError(const std::string &failpoint)
        : std::runtime_error("injected fault at failpoint '" +
                             failpoint + "'"),
          failpoint_(failpoint)
    {
    }

    /** Name of the site that fired. */
    const std::string &failpoint() const { return failpoint_; }

  private:
    std::string failpoint_;
};

namespace failpoints
{

/**
 * Arm failpoints from a spec string (see file comment). Unknown site
 * names are fine — sites are addressed by name, not registered ahead
 * of time. @return false (with a reason in @p error, when non-null)
 * on a malformed spec; well-formed entries before the bad one stay
 * armed.
 */
bool configure(const std::string &spec, std::string *error = nullptr);

/** Seed of the p: mode decisions (default 1). */
void setSeed(std::uint64_t seed);

/** Disarm every failpoint and zero all hit/fire counts. */
void reset();

/** Is any failpoint armed? */
bool anyActive();

/** Times the site was evaluated (armed or not, since last reset). */
std::uint64_t hitCount(const std::string &name);

/** Times the site actually fired. */
std::uint64_t fireCount(const std::string &name);

/**
 * Apply PIPEDEPTH_FAILPOINTS / PIPEDEPTH_FAILPOINT_SEED. Called once
 * automatically at process start (static initializer); exposed for
 * tests that mutate their own environment.
 */
void configureFromEnv();

namespace detail
{

extern std::atomic<bool> g_active;

/** Slow path: look the site up and decide. @return true = fire. */
bool evaluate(const char *name);

} // namespace detail

/** True iff the site fires on this hit (never throws). */
inline bool
fired(const char *name)
{
    if (!detail::g_active.load(std::memory_order_relaxed))
        return false;
    return detail::evaluate(name);
}

/** Throw FailpointError iff the site fires on this hit. */
inline void
hit(const char *name)
{
    if (fired(name))
        throw FailpointError(name);
}

} // namespace failpoints

/**
 * RAII failpoint arming for tests: arms @p spec on construction,
 * reset()s on destruction (all sites, so tests compose by nesting
 * rather than overlapping).
 */
class ScopedFailpoints
{
  public:
    explicit ScopedFailpoints(const std::string &spec,
                              std::uint64_t seed = 1)
    {
        failpoints::setSeed(seed);
        std::string error;
        if (!failpoints::configure(spec, &error))
            throw std::invalid_argument("bad failpoint spec: " + error);
    }

    ~ScopedFailpoints() { failpoints::reset(); }

    ScopedFailpoints(const ScopedFailpoints &) = delete;
    ScopedFailpoints &operator=(const ScopedFailpoints &) = delete;
};

/** Throwing failpoint site (see file comment). */
#define PP_FAILPOINT(name) ::pipedepth::failpoints::hit(name)

/** Error-return failpoint site: true = the injected fault fired. */
#define PP_FAILPOINT_FIRED(name) ::pipedepth::failpoints::fired(name)

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_FAILPOINT_HH
