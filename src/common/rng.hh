/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (trace synthesis, workload
 * behaviour models) draw from this generator so that every experiment
 * is exactly reproducible from a seed. The engine is xoshiro256**,
 * which is fast, has a 256-bit state, and passes BigCrush.
 */

#ifndef PIPEDEPTH_COMMON_RNG_HH
#define PIPEDEPTH_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace pipedepth
{

/**
 * A deterministic, seedable random number generator (xoshiro256**).
 *
 * Distribution helpers (uniform, geometric-ish discrete, weighted
 * choice, bernoulli) cover everything trace synthesis needs without
 * pulling in the slower std::distributions, whose results are also not
 * guaranteed identical across standard library implementations.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** True with probability p (clamped to [0, 1]). */
    bool bernoulli(double p);

    /**
     * Sample an index from a discrete distribution given by
     * non-negative weights. Requires at least one positive weight.
     *
     * @param weights relative (unnormalized) weights
     * @return index in [0, weights.size())
     */
    std::size_t weighted(const std::vector<double> &weights);

    /**
     * Geometric sample: number of failures before the first success of
     * a bernoulli(p) process; p is clamped to (0, 1].
     */
    std::uint64_t geometric(double p);

    /** Standard normal via Box-Muller (deterministic pairing). */
    double gaussian();

    /** Fork a statistically independent child stream. */
    Rng fork();

  private:
    std::uint64_t s_[4];
    double cached_gauss_ = 0.0;
    bool has_cached_gauss_ = false;
};

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_RNG_HH
