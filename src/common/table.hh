/**
 * @file
 * Plain-text table and CSV emission.
 *
 * Every bench binary reproduces a paper figure as rows/series on
 * stdout; TableWriter renders them either as an aligned human-readable
 * table or as CSV (for plotting), selected at construction.
 */

#ifndef PIPEDEPTH_COMMON_TABLE_HH
#define PIPEDEPTH_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace pipedepth
{

/**
 * Accumulates rows of string/number cells and renders them aligned or
 * as CSV. Numeric cells are formatted with a fixed precision chosen
 * per column via addColumn().
 */
class TableWriter
{
  public:
    /** Output style. */
    enum class Style { Aligned, Csv };

    explicit TableWriter(Style style = Style::Aligned);

    /**
     * Define a column.
     * @param header column title
     * @param precision digits after the decimal point for numeric cells
     */
    void addColumn(const std::string &header, int precision = 4);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    void beginRow();

    /** Append a string cell to the current row. */
    void cell(const std::string &value);
    void cell(const char *value);

    /** Append a numeric cell, formatted per the column precision. */
    void cell(double value);
    void cell(int value);
    void cell(long value);
    void cell(unsigned long value);

    /** Render the whole table to a stream. */
    void render(std::ostream &os) const;

    /** Number of completed + in-progress rows. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string formatNumber(double value) const;

    Style style_;
    std::vector<std::string> headers_;
    std::vector<int> precisions_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_TABLE_HH
