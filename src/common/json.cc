#include "common/json.hh"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/numeric.hh"

namespace pipedepth
{

namespace
{

/** Recursive-descent parser over a character range. */
class Parser
{
  public:
    Parser(const char *begin, const char *end) : p_(begin), end_(end) {}

    bool
    parseDocument(JsonValue *out, std::string *error)
    {
        skipWs();
        if (!parseValue(out, 0)) {
            fail("malformed JSON value");
        } else {
            skipWs();
            if (p_ != end_)
                fail("trailing characters after JSON document");
        }
        if (!error_.empty()) {
            if (error)
                *error = error_;
            return false;
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    fail(const char *why)
    {
        if (error_.empty())
            error_ = why;
    }

    void
    skipWs()
    {
        while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                              *p_ == '\r')) {
            ++p_;
        }
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (static_cast<std::size_t>(end_ - p_) < n ||
            std::memcmp(p_, word, n) != 0) {
            return false;
        }
        p_ += n;
        return true;
    }

    bool
    parseValue(JsonValue *out, int depth)
    {
        if (depth > kMaxDepth) {
            fail("JSON nesting too deep");
            return false;
        }
        if (p_ == end_)
            return false;
        switch (*p_) {
          case '{':
            return parseObject(out, depth);
          case '[':
            return parseArray(out, depth);
          case '"':
            out->kind = JsonValue::Kind::String;
            return parseString(&out->string);
          case 't':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = true;
            return literal("true");
          case 'f':
            out->kind = JsonValue::Kind::Bool;
            out->boolean = false;
            return literal("false");
          case 'n':
            out->kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseObject(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::Object;
        ++p_; // '{'
        skipWs();
        if (p_ != end_ && *p_ == '}') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (p_ == end_ || *p_ != '"' || !parseString(&key))
                return false;
            skipWs();
            if (p_ == end_ || *p_ != ':')
                return false;
            ++p_;
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->object.emplace_back(std::move(key), std::move(value));
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == '}') {
                ++p_;
                return true;
            }
            return false;
        }
    }

    bool
    parseArray(JsonValue *out, int depth)
    {
        out->kind = JsonValue::Kind::Array;
        ++p_; // '['
        skipWs();
        if (p_ != end_ && *p_ == ']') {
            ++p_;
            return true;
        }
        for (;;) {
            skipWs();
            JsonValue value;
            if (!parseValue(&value, depth + 1))
                return false;
            out->array.push_back(std::move(value));
            skipWs();
            if (p_ == end_)
                return false;
            if (*p_ == ',') {
                ++p_;
                continue;
            }
            if (*p_ == ']') {
                ++p_;
                return true;
            }
            return false;
        }
    }

    static void
    appendUtf8(std::string *s, unsigned cp)
    {
        if (cp < 0x80) {
            s->push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
            s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
            s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    bool
    parseHex4(unsigned *out)
    {
        if (end_ - p_ < 4)
            return false;
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = *p_++;
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<unsigned>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<unsigned>(c - 'A' + 10);
            else
                return false;
        }
        *out = v;
        return true;
    }

    bool
    parseString(std::string *out)
    {
        ++p_; // '"'
        out->clear();
        while (p_ != end_) {
            const char c = *p_++;
            if (c == '"')
                return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (p_ == end_)
                return false;
            const char esc = *p_++;
            switch (esc) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                unsigned cp = 0;
                if (!parseHex4(&cp))
                    return false;
                // Surrogate pairs would need a second \u escape;
                // nothing we emit leaves the BMP, so a lone
                // surrogate is replaced rather than rejected.
                if (cp >= 0xD800 && cp <= 0xDFFF)
                    cp = 0xFFFD;
                appendUtf8(out, cp);
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool
    parseNumber(JsonValue *out)
    {
        const char *start = p_;
        if (p_ != end_ && *p_ == '-')
            ++p_;
        while (p_ != end_ &&
               ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
                *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
            ++p_;
        }
        if (p_ == start)
            return false;
        // Locale-independent by construction: a JSON number is always
        // '.'-separated, whatever LC_NUMERIC says (common/numeric.hh).
        const char *parse_end = nullptr;
        if (!parseDoubleC(start, p_, &out->number, &parse_end) ||
            parse_end != p_) {
            return false;
        }
        out->kind = JsonValue::Kind::Number;
        return true;
    }

    const char *p_;
    const char *end_;
    std::string error_;
};

} // namespace

bool
JsonValue::parse(const std::string &text, JsonValue *out, std::string *error)
{
    JsonValue parsed;
    Parser parser(text.data(), text.data() + text.size());
    if (!parser.parseDocument(&parsed, error))
        return false;
    *out = std::move(parsed);
    return true;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no Inf/NaN; absent beats invalid
    // snprintf("%f"/"%g") would print the locale's decimal separator
    // and corrupt the document under e.g. LC_NUMERIC=de_DE; both
    // paths here are locale-independent (common/numeric.hh).
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        const long long i = static_cast<long long>(v);
        return (i == 0 && std::signbit(v)) ? "-0" : std::to_string(i);
    }
    return formatDoubleC(v, 17);
}

std::string
JsonValue::dump() const
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return boolean ? "true" : "false";
      case Kind::Number:
        return jsonNumber(number);
      case Kind::String:
        return jsonQuote(string);
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < array.size(); ++i) {
            if (i)
                out.push_back(',');
            out += array[i].dump();
        }
        out.push_back(']');
        return out;
      }
      case Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < object.size(); ++i) {
            if (i)
                out.push_back(',');
            out += jsonQuote(object[i].first);
            out.push_back(':');
            out += object[i].second.dump();
        }
        out.push_back('}');
        return out;
      }
    }
    return "null";
}

} // namespace pipedepth
