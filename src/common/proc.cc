#include "common/proc.hh"

#include <cerrno>
#include <csignal>

namespace pipedepth
{

bool
processAlive(pid_t pid)
{
    if (pid <= 0)
        return false;
    if (::kill(pid, 0) == 0)
        return true;
    // ESRCH is the only definitive "no such process"; everything else
    // (EPERM foremost) means someone is there.
    return errno != ESRCH;
}

} // namespace pipedepth
