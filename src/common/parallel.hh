/**
 * @file
 * Minimal fork/join parallelism for embarrassingly parallel sweeps.
 *
 * The Fig. 6/7 experiments run 55 workloads x 24 depths of
 * cycle-accurate simulation; parallelMap spreads independent work
 * items over hardware threads. Results keep input order, and
 * exceptions propagate to the caller.
 *
 * Scheduling is chunked work stealing: workers grab @p chunk
 * consecutive indices at a time from a shared atomic cursor, which
 * amortizes contention on the cursor when items are tiny (per-cell
 * simulation cache hits) while still balancing load when they are not
 * (cold cycle-accurate runs of very different lengths).
 *
 * Failure semantics, pinned by tests/common/test_parallel.cc:
 *  - every worker is joined before parallelMap returns or throws;
 *  - once any item has thrown, remaining items are skipped (workers
 *    check the failure flag before each item, including within a
 *    chunk);
 *  - the exception rethrown is the *first* error: the one raised by
 *    the lowest item index among the items that actually failed.
 */

#ifndef PIPEDEPTH_COMMON_PARALLEL_HH
#define PIPEDEPTH_COMMON_PARALLEL_HH

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <system_error>
#include <thread>
#include <vector>

#include "common/failpoint.hh"
#include "telemetry/metrics.hh"

namespace pipedepth
{

/**
 * Workers parallelMap will actually spawn: the requested count
 * (0 = hardware concurrency), capped at the number of chunk grabs
 * ceil(items / chunk). A worker beyond that cap could never claim
 * work — the cursor advances one whole chunk per grab — so spawning
 * it would only pay thread start/join for nothing. Exposed for
 * tests/common/test_parallel.cc; returns 0 for an empty input.
 */
inline unsigned
parallelWorkerCount(unsigned threads, std::size_t items,
                    std::size_t chunk)
{
    if (items == 0)
        return 0;
    if (chunk == 0)
        chunk = 1;
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    const std::size_t grabs = (items + chunk - 1) / chunk;
    if (threads > grabs)
        threads = static_cast<unsigned>(grabs);
    return threads;
}

/**
 * Apply @p fn to every element of @p items on up to @p threads
 * workers; returns results in input order. fn must be safe to call
 * concurrently on distinct items.
 *
 * @param threads worker count; 0 = hardware concurrency, capped at
 *        ceil(items / chunk) (see parallelWorkerCount)
 * @param chunk   consecutive items claimed per scheduling step
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn, unsigned threads = 0,
            std::size_t chunk = 1)
    -> std::vector<decltype(fn(items.front()))>
{
    using R = decltype(fn(items.front()));
    std::vector<R> results(items.size());
    if (items.empty())
        return results;
    if (chunk == 0)
        chunk = 1;
    threads = parallelWorkerCount(threads, items.size(), chunk);

    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_index = 0;

    auto recordError = [&](std::size_t i) {
        {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!error || i < error_index) {
                error = std::current_exception();
                error_index = i;
            }
        }
        failed.store(true, std::memory_order_release);
    };

    // Run [begin, end); stops early (without claiming more work) as
    // soon as any worker has failed.
    auto runRange = [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            if (failed.load(std::memory_order_acquire))
                return;
            try {
                results[i] = fn(items[i]);
            } catch (...) {
                recordError(i);
                return;
            }
        }
    };

    // Scheduling observability (docs/OBSERVABILITY.md): how many
    // workers ran, how many chunk grabs the cursor served, and the
    // distribution of per-worker busy time — a wide busy_us spread on
    // a grid run means the chunk size is leaving cores idle at the
    // tail. Registered once per process; updated per chunk, not per
    // item, so the cost stays amortized.
    static Counter &spawn_counter =
        MetricsRegistry::instance().counter("parallel.worker.spawn");
    static Counter &claim_counter =
        MetricsRegistry::instance().counter("parallel.chunk.claim");
    static Histogram &busy_histogram =
        MetricsRegistry::instance().histogram("parallel.worker.busy_us");

    if (threads == 1) {
        const auto start = std::chrono::steady_clock::now();
        runRange(0, items.size());
        busy_histogram.recordSeconds(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            const auto start = std::chrono::steady_clock::now();
            for (;;) {
                const std::size_t begin =
                    next.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= items.size() ||
                    failed.load(std::memory_order_acquire)) {
                    break;
                }
                claim_counter.add();
                runRange(begin, std::min(items.size(), begin + chunk));
            }
            busy_histogram.recordSeconds(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
        };

        static Counter &spawn_fail_counter =
            MetricsRegistry::instance().counter(
                "parallel.worker.spawn_fail");
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            // A failed spawn (thread-resource exhaustion, or the
            // parallel.worker.spawn failpoint) degrades the pool
            // instead of aborting the sweep: whatever workers did
            // start carry the grid, and a fully failed pool falls
            // back to running inline on this thread.
            try {
                if (PP_FAILPOINT_FIRED("parallel.worker.spawn")) {
                    throw std::system_error(
                        std::make_error_code(
                            std::errc::resource_unavailable_try_again),
                        "injected worker-spawn failure");
                }
                pool.emplace_back(worker);
            } catch (const std::system_error &) {
                spawn_fail_counter.add();
            }
        }
        spawn_counter.add(pool.size());
        if (pool.empty())
            worker();
        for (auto &th : pool)
            th.join();
    }

    if (failed.load() && error)
        std::rethrow_exception(error);
    return results;
}

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_PARALLEL_HH
