/**
 * @file
 * Minimal fork/join parallelism for embarrassingly parallel sweeps.
 *
 * The Fig. 6/7 experiments run 55 workloads x 24 depths of
 * cycle-accurate simulation; parallelMap spreads independent work
 * items over hardware threads. Results keep input order, and
 * exceptions propagate to the caller.
 */

#ifndef PIPEDEPTH_COMMON_PARALLEL_HH
#define PIPEDEPTH_COMMON_PARALLEL_HH

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace pipedepth
{

/**
 * Apply @p fn to every element of @p items on up to @p threads
 * workers; returns results in input order. fn must be safe to call
 * concurrently on distinct items.
 */
template <typename T, typename Fn>
auto
parallelMap(const std::vector<T> &items, Fn fn, unsigned threads = 0)
    -> std::vector<decltype(fn(items.front()))>
{
    using R = decltype(fn(items.front()));
    std::vector<R> results(items.size());
    if (items.empty())
        return results;

    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;
    if (threads > items.size())
        threads = static_cast<unsigned>(items.size());

    if (threads == 1) {
        for (std::size_t i = 0; i < items.size(); ++i)
            results[i] = fn(items[i]);
        return results;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr error;
    std::atomic<bool> failed{false};

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= items.size() || failed.load())
                return;
            try {
                results[i] = fn(items[i]);
            } catch (...) {
                if (!failed.exchange(true))
                    error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (failed.load() && error)
        std::rethrow_exception(error);
    return results;
}

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_PARALLEL_HH
