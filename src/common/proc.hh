/**
 * @file
 * Process-liveness probing shared by every pid-stamped on-disk
 * protocol in the tree.
 *
 * The checkpoint journal, the result cache's temp-file sweep and the
 * shard coordinator's lease takeover all stamp files with the writer's
 * pid and later need to decide: is that writer still alive? The only
 * portable answer is kill(pid, 0), and its error semantics are subtle
 * enough that the three call sites kept re-implementing them — hence
 * this helper.
 *
 * Semantics (pinned by tests/common/test_proc.cc):
 *  - kill(pid, 0) == 0      -> alive (signalable by us);
 *  - errno == EPERM         -> alive (exists, just not ours to
 *                              signal — sweeping its files would race
 *                              a live writer);
 *  - errno == ESRCH         -> dead: no such process;
 *  - any other error        -> treated as alive, erring on the side
 *                              of never stealing from a live owner.
 *
 * Pid reuse is deliberately out of scope: every protocol built on
 * this probe tolerates a false "alive" (the file just survives a bit
 * longer; a sweep or a takeover retries later), and the workers of
 * one sweep are short-lived siblings, where reuse within a run is not
 * a realistic window.
 */

#ifndef PIPEDEPTH_COMMON_PROC_HH
#define PIPEDEPTH_COMMON_PROC_HH

#include <sys/types.h>

namespace pipedepth
{

/**
 * Is there a process with id @p pid? EPERM counts as alive; only a
 * definitive ESRCH counts as dead. @p pid values <= 0 (process
 * groups, "any") are rejected as dead — callers probe concrete
 * stamped pids, never groups.
 */
bool processAlive(pid_t pid);

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_PROC_HH
