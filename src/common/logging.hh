/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for user errors (bad
 * configuration, bad input files), and warn()/inform() are advisory.
 * PP_DEBUG is for developer-facing chatter, hidden by default.
 *
 * Messages below the active level (see LogLevel) are filtered at the
 * call site, before their arguments are formatted. The level defaults
 * to Info and can be overridden with the PIPEDEPTH_LOG environment
 * variable ("debug", "info", "warn" or "error"); panic/fatal always
 * print. All messages flow through one mutex-guarded sink that writes
 * whole lines, so concurrent sweep workers never interleave mid-line.
 */

#ifndef PIPEDEPTH_COMMON_LOGGING_HH
#define PIPEDEPTH_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace pipedepth
{

/**
 * Message severities, ordered: a message prints when its level is at
 * or above the active threshold. Error is the level of panic/fatal,
 * which are never filtered.
 */
enum class LogLevel
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/**
 * Parse a level name ("debug", "info", "warn"/"warning", "error",
 * case-insensitive) into @p out. Returns false — leaving @p out
 * untouched — for anything else.
 */
bool parseLogLevel(const std::string &text, LogLevel &out);

/** Name of @p level as parseLogLevel accepts it. */
const char *logLevelName(LogLevel level);

/**
 * Active threshold. The first call (per process, unless setLogLevel
 * or reloadLogLevelFromEnv intervenes) reads PIPEDEPTH_LOG.
 */
LogLevel logLevel();

/** Set the threshold, overriding the environment. */
void setLogLevel(LogLevel level);

/**
 * Re-read PIPEDEPTH_LOG and return the resulting threshold: the
 * parsed value, or Info when the variable is unset; an unparseable
 * value keeps Info and warns once. Exposed so tests (and tools that
 * mutate their own environment) can re-apply the override.
 */
LogLevel reloadLogLevelFromEnv();

/** Would a message at @p level print? */
inline bool
logLevelEnabled(LogLevel level)
{
    return static_cast<int>(level) >= static_cast<int>(logLevel());
}

/** Internal detail: assemble a message from stream-style arguments. */
namespace logging_detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Print and abort(). Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print and exit(1). Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Print a debug message to stderr. */
void debugImpl(const std::string &msg);

} // namespace logging_detail

/**
 * Abort because an internal invariant was violated. Use for conditions
 * that indicate a bug in this library, never for user error.
 */
#define PP_PANIC(...)                                                       \
    ::pipedepth::logging_detail::panicImpl(                                 \
        __FILE__, __LINE__, ::pipedepth::logging_detail::concat(__VA_ARGS__))

/**
 * Exit because the caller supplied an unusable configuration or input.
 */
#define PP_FATAL(...)                                                       \
    ::pipedepth::logging_detail::fatalImpl(                                 \
        __FILE__, __LINE__, ::pipedepth::logging_detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. Active in all build types. */
#define PP_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pipedepth::logging_detail::panicImpl(                         \
                __FILE__, __LINE__,                                         \
                ::pipedepth::logging_detail::concat(                        \
                    "assertion failed: " #cond " ", ##__VA_ARGS__));        \
        }                                                                   \
    } while (0)

/** Emit a non-fatal warning. */
#define PP_WARN(...)                                                        \
    do {                                                                    \
        if (::pipedepth::logLevelEnabled(::pipedepth::LogLevel::Warn)) {    \
            ::pipedepth::logging_detail::warnImpl(                          \
                ::pipedepth::logging_detail::concat(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

/** Emit a status message. */
#define PP_INFORM(...)                                                      \
    do {                                                                    \
        if (::pipedepth::logLevelEnabled(::pipedepth::LogLevel::Info)) {    \
            ::pipedepth::logging_detail::informImpl(                        \
                ::pipedepth::logging_detail::concat(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

/**
 * Emit a developer debug message; hidden unless the level is Debug
 * (PIPEDEPTH_LOG=debug). Arguments are not formatted when filtered.
 */
#define PP_DEBUG(...)                                                       \
    do {                                                                    \
        if (::pipedepth::logLevelEnabled(::pipedepth::LogLevel::Debug)) {   \
            ::pipedepth::logging_detail::debugImpl(                         \
                ::pipedepth::logging_detail::concat(__VA_ARGS__));          \
        }                                                                   \
    } while (0)

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_LOGGING_HH
