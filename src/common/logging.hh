/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a library bug), fatal() is for user errors (bad
 * configuration, bad input files), and warn()/inform() are advisory.
 */

#ifndef PIPEDEPTH_COMMON_LOGGING_HH
#define PIPEDEPTH_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace pipedepth
{

/** Internal detail: assemble a message from stream-style arguments. */
namespace logging_detail
{

template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Print and abort(). Never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Print and exit(1). Never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace logging_detail

/**
 * Abort because an internal invariant was violated. Use for conditions
 * that indicate a bug in this library, never for user error.
 */
#define PP_PANIC(...)                                                       \
    ::pipedepth::logging_detail::panicImpl(                                 \
        __FILE__, __LINE__, ::pipedepth::logging_detail::concat(__VA_ARGS__))

/**
 * Exit because the caller supplied an unusable configuration or input.
 */
#define PP_FATAL(...)                                                       \
    ::pipedepth::logging_detail::fatalImpl(                                 \
        __FILE__, __LINE__, ::pipedepth::logging_detail::concat(__VA_ARGS__))

/** Panic unless a condition holds. Active in all build types. */
#define PP_ASSERT(cond, ...)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::pipedepth::logging_detail::panicImpl(                         \
                __FILE__, __LINE__,                                         \
                ::pipedepth::logging_detail::concat(                        \
                    "assertion failed: " #cond " ", ##__VA_ARGS__));        \
        }                                                                   \
    } while (0)

/** Emit a non-fatal warning. */
#define PP_WARN(...)                                                        \
    ::pipedepth::logging_detail::warnImpl(                                  \
        ::pipedepth::logging_detail::concat(__VA_ARGS__))

/** Emit a status message. */
#define PP_INFORM(...)                                                      \
    ::pipedepth::logging_detail::informImpl(                                \
        ::pipedepth::logging_detail::concat(__VA_ARGS__))

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_LOGGING_HH
