/**
 * @file
 * Cooperative interrupt handling for long-running sweeps.
 *
 * installInterruptHandlers() routes SIGINT and SIGTERM to a flag that
 * the sweep engine polls between cells: on the first signal the grid
 * *drains* — in-flight cells finish, no new cells start, the manifest
 * and checkpoint finalize with status "interrupted" — so a Ctrl-C'd
 * catalog sweep keeps every completed cell in the result cache and
 * resumes from where it stopped (docs/RELIABILITY.md). A second
 * signal exits immediately for users who really mean it.
 *
 * The flag is process-global and async-signal-safe; tests drive it
 * directly with requestInterrupt()/clearInterruptRequest().
 */

#ifndef PIPEDEPTH_COMMON_INTERRUPT_HH
#define PIPEDEPTH_COMMON_INTERRUPT_HH

namespace pipedepth
{

/**
 * Install the SIGINT/SIGTERM drain handlers (idempotent). Tools that
 * run sweeps call this before the grid starts.
 */
void installInterruptHandlers();

/** Has an interrupt (signal or requestInterrupt) been requested? */
bool interruptRequested();

/**
 * The signal that triggered the request (SIGINT/SIGTERM), or 0 when
 * none was delivered (e.g. the request came from a test). The
 * conventional exit status of an interrupted run is 128 + this.
 */
int interruptSignal();

/** Request a drain programmatically (tests, embedders). */
void requestInterrupt();

/** Clear the flag (tests; a drained run normally just exits). */
void clearInterruptRequest();

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_INTERRUPT_HH
