#include "common/numeric.hh"

#include <charconv>
#include <system_error>

namespace pipedepth
{

bool
parseDoubleC(const char *begin, const char *end, double *out,
             const char **parse_end)
{
    if (parse_end)
        *parse_end = begin;
    // from_chars rejects a leading '+' (strtod accepts it); no caller
    // emits one, and rejecting is the stricter, JSON-compatible
    // behavior.
    const std::from_chars_result r = std::from_chars(begin, end, *out);
    if (r.ec == std::errc::result_out_of_range)
        return false;
    if (r.ec != std::errc())
        return false;
    if (parse_end)
        *parse_end = r.ptr;
    return true;
}

bool
parseDoubleFullC(const std::string &text, double *out)
{
    const char *end = nullptr;
    if (!parseDoubleC(text.data(), text.data() + text.size(), out, &end))
        return false;
    return end == text.data() + text.size() && !text.empty();
}

std::string
formatDoubleC(double v, int precision)
{
    char buf[64];
    const std::to_chars_result r =
        std::to_chars(buf, buf + sizeof(buf), v,
                      std::chars_format::general, precision);
    if (r.ec != std::errc())
        return "0"; // cannot happen for any finite double at p <= 17
    return std::string(buf, r.ptr);
}

} // namespace pipedepth
