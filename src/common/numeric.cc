#include "common/numeric.hh"

#include <charconv>
#include <cmath>
#include <system_error>

namespace pipedepth
{

namespace
{

/**
 * strtod-compatible value for a literal in [@p begin, @p end) that
 * from_chars reported out of range: 0.0 for an underflow ("1e-999"),
 * ±HUGE_VAL for an overflow ("-1e999"). Overflow and underflow are
 * hundreds of decimal orders of magnitude apart, so the sign of the
 * literal's decimal exponent decides which side it fell off.
 */
double
outOfRangeValue(const char *begin, const char *end)
{
    const char *p = begin;
    const bool negative = p != end && *p == '-';
    if (negative)
        ++p;

    // Significant-digit position of the leading nonzero digit:
    // "123.4" -> +2, "0.004" -> -3, all-zero mantissa -> 0 (cannot
    // be out of range, but fall through harmlessly).
    long leading = 0;
    bool seen_nonzero = false;
    long int_digits = 0;
    for (; p != end && *p >= '0' && *p <= '9'; ++p) {
        if (*p != '0' || seen_nonzero) {
            if (!seen_nonzero)
                seen_nonzero = true;
            ++int_digits;
        }
    }
    if (seen_nonzero)
        leading = int_digits - 1;
    if (p != end && *p == '.') {
        ++p;
        long frac_zeros = 0;
        for (; p != end && *p >= '0' && *p <= '9'; ++p) {
            if (seen_nonzero)
                continue;
            if (*p == '0') {
                ++frac_zeros;
            } else {
                seen_nonzero = true;
                leading = -frac_zeros - 1;
            }
        }
    }

    long exponent = 0;
    if (p != end && (*p == 'e' || *p == 'E')) {
        ++p;
        const bool exp_negative = p != end && *p == '-';
        if (p != end && (*p == '-' || *p == '+'))
            ++p;
        for (; p != end && *p >= '0' && *p <= '9'; ++p) {
            if (exponent < 100000)
                exponent = exponent * 10 + (*p - '0');
        }
        if (exp_negative)
            exponent = -exponent;
    }

    const bool overflow = exponent + leading >= 0;
    if (overflow)
        return negative ? -HUGE_VAL : HUGE_VAL;
    return 0.0;
}

} // namespace

bool
parseDoubleC(const char *begin, const char *end, double *out,
             const char **parse_end)
{
    if (parse_end)
        *parse_end = begin;
    // from_chars rejects a leading '+' (strtod accepts it); no caller
    // emits one, and rejecting is the stricter, JSON-compatible
    // behavior.
    const std::from_chars_result r = std::from_chars(begin, end, *out);
    if (r.ec == std::errc::result_out_of_range) {
        // Keep strtod's tolerance: a syntactically valid literal the
        // double can't represent parses as 0.0 (underflow) or
        // ±infinity (overflow) rather than poisoning the document.
        *out = outOfRangeValue(begin, r.ptr);
        if (parse_end)
            *parse_end = r.ptr;
        return true;
    }
    if (r.ec != std::errc())
        return false;
    if (parse_end)
        *parse_end = r.ptr;
    return true;
}

bool
parseDoubleFullC(const std::string &text, double *out)
{
    const char *end = nullptr;
    if (!parseDoubleC(text.data(), text.data() + text.size(), out, &end))
        return false;
    return end == text.data() + text.size() && !text.empty();
}

std::string
formatDoubleC(double v, int precision)
{
    char buf[64];
    const std::to_chars_result r =
        std::to_chars(buf, buf + sizeof(buf), v,
                      std::chars_format::general, precision);
    if (r.ec != std::errc())
        return "0"; // cannot happen for any finite double at p <= 17
    return std::string(buf, r.ptr);
}

} // namespace pipedepth
