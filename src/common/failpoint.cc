#include "common/failpoint.hh"

#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/logging.hh"
#include "common/numeric.hh"

namespace pipedepth
{
namespace failpoints
{

namespace
{

enum class Mode
{
    Off,
    Always,
    Once,
    Every,
    Hits,
    Probability,
};

struct Site
{
    Mode mode = Mode::Off;
    std::uint64_t every = 0;           //!< Every: period
    std::set<std::uint64_t> fire_hits; //!< Hits: 1-based indices
    double probability = 0.0;          //!< Probability: chance per hit
    std::uint64_t hits = 0;            //!< evaluations since reset
    std::uint64_t fires = 0;           //!< times the site fired
};

std::mutex g_mutex;
std::map<std::string, Site> g_sites;
std::uint64_t g_seed = 1;

/** SplitMix64: well-mixed 64-bit hash of a 64-bit input. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : s)
        h = (h ^ c) * 1099511628211ull;
    return h;
}

/** Deterministic decision of p: mode for hit @p index of @p name. */
bool
probabilityFires(const std::string &name, std::uint64_t index, double p)
{
    const std::uint64_t draw =
        splitmix64(g_seed ^ fnv1a(name) ^ (index * 0x2545f4914f6cdd1dull));
    return static_cast<double>(draw) <
           p * 18446744073709551616.0; // 2^64
}

void
refreshActiveFlag()
{
    bool active = false;
    for (const auto &[name, site] : g_sites)
        active = active || site.mode != Mode::Off;
    detail::g_active.store(active, std::memory_order_relaxed);
}

/** Parse one "site=mode" entry into the registry. */
bool
configureEntry(const std::string &entry, std::string *error)
{
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
        if (error)
            *error = "expected site=mode, got '" + entry + "'";
        return false;
    }
    const std::string name = entry.substr(0, eq);
    const std::string mode = entry.substr(eq + 1);

    Site site;
    if (mode == "off") {
        site.mode = Mode::Off;
    } else if (mode == "always") {
        site.mode = Mode::Always;
    } else if (mode == "once") {
        site.mode = Mode::Once;
    } else if (mode.rfind("every:", 0) == 0) {
        site.mode = Mode::Every;
        site.every = std::strtoull(mode.c_str() + 6, nullptr, 10);
        if (site.every == 0) {
            if (error)
                *error = "every: needs a positive period in '" + entry +
                         "'";
            return false;
        }
    } else if (mode.rfind("hits:", 0) == 0) {
        site.mode = Mode::Hits;
        const char *p = mode.c_str() + 5;
        while (*p) {
            char *end = nullptr;
            const std::uint64_t n = std::strtoull(p, &end, 10);
            if (end == p || n == 0) {
                if (error)
                    *error = "hits: needs 1-based indices in '" + entry +
                             "'";
                return false;
            }
            site.fire_hits.insert(n);
            p = *end == ',' ? end + 1 : end;
            if (*end && *end != ',') {
                if (error)
                    *error = "bad hits list in '" + entry + "'";
                return false;
            }
        }
        if (site.fire_hits.empty()) {
            if (error)
                *error = "hits: needs at least one index in '" + entry +
                         "'";
            return false;
        }
    } else if (mode.rfind("p:", 0) == 0) {
        site.mode = Mode::Probability;
        // Locale-independent, whole-string parse: "p:0.5" must mean
        // 0.5 under LC_NUMERIC=de_DE too, and trailing garbage
        // ("p:0.5x", "p:0,5") is a spec error, not something to
        // silently ignore (common/numeric.hh).
        if (!parseDoubleFullC(mode.substr(2), &site.probability) ||
            site.probability < 0.0 || site.probability > 1.0) {
            if (error)
                *error = "p: needs a probability in [0, 1] in '" + entry +
                         "'";
            return false;
        }
    } else {
        if (error)
            *error = "unknown failpoint mode '" + mode + "'";
        return false;
    }

    Site &slot = g_sites[name];
    const std::uint64_t hits = slot.hits, fires = slot.fires;
    slot = site;
    slot.hits = hits; // re-arming keeps history (reset() clears it)
    slot.fires = fires;
    return true;
}

/** One-time application of the environment at process start. */
struct EnvInit
{
    EnvInit() { configureFromEnv(); }
} g_env_init;

} // namespace

namespace detail
{

std::atomic<bool> g_active{false};

bool
evaluate(const char *name)
{
    bool fires = false;
    {
        const std::lock_guard<std::mutex> lock(g_mutex);
        const auto it = g_sites.find(name);
        if (it == g_sites.end())
            return false;
        Site &site = it->second;
        const std::uint64_t index = ++site.hits; // 1-based
        switch (site.mode) {
          case Mode::Off:
            break;
          case Mode::Always:
            fires = true;
            break;
          case Mode::Once:
            fires = index == 1;
            break;
          case Mode::Every:
            fires = index % site.every == 0;
            break;
          case Mode::Hits:
            fires = site.fire_hits.count(index) > 0;
            break;
          case Mode::Probability:
            fires = probabilityFires(it->first, index, site.probability);
            break;
        }
        if (fires)
            ++site.fires;
    }
    // No metrics-registry counter here: pp_common must not depend on
    // pp_telemetry. Per-site fire counts are queryable via fireCount.
    if (fires)
        PP_DEBUG("failpoint '", name, "' fired");
    return fires;
}

} // namespace detail

bool
configure(const std::string &spec, std::string *error)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::size_t begin = 0;
    while (begin <= spec.size()) {
        std::size_t end = spec.find(';', begin);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(begin, end - begin);
        if (!entry.empty() && !configureEntry(entry, error)) {
            refreshActiveFlag();
            return false;
        }
        begin = end + 1;
    }
    refreshActiveFlag();
    return true;
}

void
setSeed(std::uint64_t seed)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_seed = seed;
}

void
reset()
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    g_sites.clear();
    g_seed = 1;
    detail::g_active.store(false, std::memory_order_relaxed);
}

bool
anyActive()
{
    return detail::g_active.load(std::memory_order_relaxed);
}

std::uint64_t
hitCount(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = g_sites.find(name);
    return it == g_sites.end() ? 0 : it->second.hits;
}

std::uint64_t
fireCount(const std::string &name)
{
    const std::lock_guard<std::mutex> lock(g_mutex);
    const auto it = g_sites.find(name);
    return it == g_sites.end() ? 0 : it->second.fires;
}

void
configureFromEnv()
{
    if (const char *seed = std::getenv("PIPEDEPTH_FAILPOINT_SEED"))
        setSeed(std::strtoull(seed, nullptr, 10));
    const char *spec = std::getenv("PIPEDEPTH_FAILPOINTS");
    if (!spec || !*spec)
        return;
    std::string error;
    if (!configure(spec, &error)) {
        PP_WARN("ignoring malformed PIPEDEPTH_FAILPOINTS entry: ",
                error);
    } else {
        PP_INFORM("failpoints armed from PIPEDEPTH_FAILPOINTS: ", spec);
    }
}

} // namespace failpoints
} // namespace pipedepth
