#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/logging.hh"

namespace pipedepth
{

TableWriter::TableWriter(Style style) : style_(style)
{
}

void
TableWriter::addColumn(const std::string &header, int precision)
{
    PP_ASSERT(rows_.empty(), "columns must be defined before rows");
    headers_.push_back(header);
    precisions_.push_back(precision);
}

void
TableWriter::beginRow()
{
    if (!rows_.empty()) {
        PP_ASSERT(rows_.back().size() == headers_.size(),
                  "previous row incomplete: ", rows_.back().size(), " of ",
                  headers_.size(), " cells");
    }
    rows_.emplace_back();
}

void
TableWriter::cell(const std::string &value)
{
    PP_ASSERT(!rows_.empty(), "cell() before beginRow()");
    PP_ASSERT(rows_.back().size() < headers_.size(), "row overflow");
    rows_.back().push_back(value);
}

void
TableWriter::cell(const char *value)
{
    cell(std::string(value));
}

std::string
TableWriter::formatNumber(double value) const
{
    PP_ASSERT(!rows_.empty(), "cell() before beginRow()");
    const std::size_t col = rows_.back().size();
    PP_ASSERT(col < precisions_.size(), "row overflow");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precisions_[col], value);
    return buf;
}

void
TableWriter::cell(double value)
{
    cell(formatNumber(value));
}

void
TableWriter::cell(int value)
{
    cell(std::to_string(value));
}

void
TableWriter::cell(long value)
{
    cell(std::to_string(value));
}

void
TableWriter::cell(unsigned long value)
{
    cell(std::to_string(value));
}

void
TableWriter::render(std::ostream &os) const
{
    if (style_ == Style::Csv) {
        for (std::size_t c = 0; c < headers_.size(); ++c)
            os << (c ? "," : "") << headers_[c];
        os << '\n';
        for (const auto &row : rows_) {
            for (std::size_t c = 0; c < row.size(); ++c)
                os << (c ? "," : "") << row[c];
            os << '\n';
        }
        return;
    }

    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    }

    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : "";
            os << (c ? "  " : "");
            os << std::string(width[c] > v.size() ? width[c] - v.size() : 0,
                              ' ')
               << v;
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        total += width[c] + (c ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace pipedepth
