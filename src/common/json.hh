/**
 * @file
 * Minimal JSON reading and writing.
 *
 * The telemetry layer (src/telemetry/) emits Chrome trace files, run
 * manifests and JSONL event streams, and its tests read them back for
 * field-by-field comparison; the throughput bench validates the
 * schema of its committed baseline. None of that needs a full JSON
 * library — just a faithful reader for well-formed documents and an
 * escaper for the writers — and the container deliberately carries no
 * third-party JSON dependency.
 *
 * JsonValue::parse accepts standard JSON (RFC 8259): objects, arrays,
 * strings with escapes (\uXXXX decoded to UTF-8 for the BMP), numbers
 * as double, true/false/null. Object member order is preserved so
 * round-tripped documents compare deterministically.
 */

#ifndef PIPEDEPTH_COMMON_JSON_HH
#define PIPEDEPTH_COMMON_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pipedepth
{

/** Parsed JSON document node. */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object; //!< in order

    /**
     * Parse @p text into @p out.
     * @return false (with a human-readable reason in @p error, when
     *         non-null) on malformed input or trailing garbage.
     */
    static bool parse(const std::string &text, JsonValue *out,
                      std::string *error = nullptr);

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isBool() const { return kind == Kind::Bool; }

    /** Member lookup on an object; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    /** Re-serialize (compact, members in stored order). */
    std::string dump() const;
};

/** @p s as a double-quoted JSON string token with all escapes applied. */
std::string jsonQuote(const std::string &s);

/**
 * Render a double the way the telemetry writers do: integers without
 * a fraction, everything else with enough digits to round-trip.
 */
std::string jsonNumber(double v);

} // namespace pipedepth

#endif // PIPEDEPTH_COMMON_JSON_HH
