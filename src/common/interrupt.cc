#include "common/interrupt.hh"

#include <atomic>
#include <csignal>

#include <unistd.h>

namespace pipedepth
{

namespace
{

std::atomic<int> g_interrupt_signal{0};
std::atomic<bool> g_interrupt_requested{false};

extern "C" void
drainSignalHandler(int sig)
{
    if (g_interrupt_requested.exchange(true)) {
        // Second signal: the user wants out *now*. _exit is
        // async-signal-safe; the kernel reclaims everything.
        _exit(128 + sig);
    }
    g_interrupt_signal.store(sig);
    // Async-signal-safe one-liner so a quiet drain is not mistaken
    // for a hang.
    const char msg[] =
        "\npipedepth: draining (finishing in-flight cells; signal "
        "again to abort)\n";
    const ssize_t ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

} // namespace

void
installInterruptHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = drainSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // no SA_RESTART: blocked reads should wake too
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);
}

bool
interruptRequested()
{
    return g_interrupt_requested.load(std::memory_order_relaxed);
}

int
interruptSignal()
{
    return g_interrupt_signal.load(std::memory_order_relaxed);
}

void
requestInterrupt()
{
    g_interrupt_requested.store(true, std::memory_order_relaxed);
}

void
clearInterruptRequest()
{
    g_interrupt_requested.store(false, std::memory_order_relaxed);
    g_interrupt_signal.store(0, std::memory_order_relaxed);
}

} // namespace pipedepth
