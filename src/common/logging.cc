#include "common/logging.hh"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pipedepth
{

namespace
{

// -1 means "not yet initialized from PIPEDEPTH_LOG". Function-local
// statics would be tidier, but the sink mutex must survive until the
// last message of the process, so both live at namespace scope with
// constant initialization.
std::atomic<int> g_level{-1};
std::mutex g_sink_mutex;

// Assemble the whole line first, then write it with a single
// fwrite under the sink mutex: messages from concurrent sweep
// workers come out whole, never interleaved mid-line.
void
writeLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    const std::lock_guard<std::mutex> lock(g_sink_mutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

bool
parseLogLevel(const std::string &text, LogLevel &out)
{
    std::string lower;
    lower.reserve(text.size());
    for (char c : text)
        lower += static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    if (lower == "debug")
        out = LogLevel::Debug;
    else if (lower == "info")
        out = LogLevel::Info;
    else if (lower == "warn" || lower == "warning")
        out = LogLevel::Warn;
    else if (lower == "error")
        out = LogLevel::Error;
    else
        return false;
    return true;
}

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "info";
}

LogLevel
logLevel()
{
    const int v = g_level.load(std::memory_order_acquire);
    if (v >= 0)
        return static_cast<LogLevel>(v);
    return reloadLogLevelFromEnv();
}

void
setLogLevel(LogLevel level)
{
    g_level.store(static_cast<int>(level), std::memory_order_release);
}

LogLevel
reloadLogLevelFromEnv()
{
    LogLevel level = LogLevel::Info;
    const char *env = std::getenv("PIPEDEPTH_LOG");
    if (env && env[0] != '\0' && !parseLogLevel(env, level)) {
        // Set the level *before* warning so the warning itself is not
        // filtered by an uninitialized threshold.
        setLogLevel(level);
        static std::once_flag warned;
        std::call_once(warned, [env] {
            writeLine("warn: ",
                      std::string("unrecognized PIPEDEPTH_LOG value '") +
                          env + "' (expected debug/info/warn/error); "
                          "using info");
        });
        return level;
    }
    setLogLevel(level);
    return level;
}

namespace logging_detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    writeLine("panic: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    writeLine("fatal: ",
              msg + " (" + file + ":" + std::to_string(line) + ")");
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    writeLine("warn: ", msg);
}

void
informImpl(const std::string &msg)
{
    writeLine("info: ", msg);
}

void
debugImpl(const std::string &msg)
{
    writeLine("debug: ", msg);
}

} // namespace logging_detail
} // namespace pipedepth
