#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace pipedepth
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // An all-zero state would be absorbing; splitmix64 of any seed
    // cannot produce four zeros, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    PP_ASSERT(n > 0, "Rng::below requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    PP_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(below(span));
}

bool
Rng::bernoulli(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::size_t
Rng::weighted(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        PP_ASSERT(w >= 0.0, "negative weight in Rng::weighted");
        total += w;
    }
    PP_ASSERT(total > 0.0, "Rng::weighted requires a positive weight");
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        x -= weights[i];
        if (x < 0.0)
            return i;
    }
    // Floating-point accumulation can leave x == 0 at the end; return
    // the last index with positive weight.
    for (std::size_t i = weights.size(); i-- > 0;) {
        if (weights[i] > 0.0)
            return i;
    }
    PP_PANIC("unreachable in Rng::weighted");
}

std::uint64_t
Rng::geometric(double p)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        p = 1e-12;
    const double u = 1.0 - uniform(); // in (0, 1]
    const double k = std::floor(std::log(u) / std::log1p(-p));
    if (k < 0.0)
        return 0;
    if (k > 1e18)
        return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(k);
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace pipedepth
