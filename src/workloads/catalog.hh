/**
 * @file
 * The 55-workload catalog.
 *
 * The paper simulates 55 proprietary traces spanning four families:
 * "traditional (legacy) database and on-line transaction processing
 * applications, modern (e.g. web) applications, SPEC95 and SPEC2000
 * integer applications, and floating point applications". This
 * catalog defines 55 synthetic workloads with the same family
 * structure and the family characteristics the paper relies on:
 *
 *  - Legacy (15): assembler-era DB/OLTP — large instruction
 *    footprints (I-cache pressure), large data working sets, hard
 *    branches, tight dependence chains (low superscalar utilization).
 *  - Modern (12): C++/Java server code — big-ish footprints, many
 *    calls/indirect-ish branches, moderate dependence distance.
 *  - SPECint95 (10) and SPECint2000 (8): loopy, predictable,
 *    cache-resident integer codes ("less stressful of the processor
 *    than real workloads"); SPEC2000 with somewhat larger footprints.
 *  - Floating point (10): FP-dominated loops; few, highly predictable
 *    branches; streaming memory; long unpipelined FP latencies
 *    that slash the effective superscalar degree (which is what
 *    spreads their optimum depths far to the right in Fig. 7).
 *
 * Every entry is deterministic: name -> seed -> trace.
 */

#ifndef PIPEDEPTH_WORKLOADS_CATALOG_HH
#define PIPEDEPTH_WORKLOADS_CATALOG_HH

#include <string>
#include <vector>

#include "trace/generator.hh"

namespace pipedepth
{

/** Workload families of the paper's Fig. 7. */
enum class WorkloadClass
{
    Legacy,
    Modern,
    SpecInt95,
    SpecInt2000,
    SpecFp,
};

/** Family name for reports ("legacy", "modern", ...). */
std::string workloadClassName(WorkloadClass cls);

/** One catalog entry. */
struct WorkloadSpec
{
    std::string name;
    WorkloadClass cls = WorkloadClass::Modern;
    TraceGenParams gen;

    /** Generate this workload's trace (optionally overriding length). */
    Trace makeTrace(std::size_t length = 0) const;
};

/** The full 55-entry catalog, stable order. */
const std::vector<WorkloadSpec> &workloadCatalog();

/** Catalog entries of one family. */
std::vector<WorkloadSpec> workloadsOfClass(WorkloadClass cls);

/** Find a workload by name; fatal if absent. */
const WorkloadSpec &findWorkload(const std::string &name);

} // namespace pipedepth

#endif // PIPEDEPTH_WORKLOADS_CATALOG_HH
