#include "workloads/catalog.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace pipedepth
{

std::string
workloadClassName(WorkloadClass cls)
{
    switch (cls) {
      case WorkloadClass::Legacy:
        return "legacy";
      case WorkloadClass::Modern:
        return "modern";
      case WorkloadClass::SpecInt95:
        return "specint95";
      case WorkloadClass::SpecInt2000:
        return "specint2000";
      case WorkloadClass::SpecFp:
        return "specfp";
    }
    PP_PANIC("bad workload class");
}

Trace
WorkloadSpec::makeTrace(std::size_t length) const
{
    TraceGenParams params = gen;
    if (length)
        params.length = length;
    return generateTrace(params, name);
}

namespace
{

/**
 * Deterministic per-workload jitter: scales a base value by a factor
 * in [1-spread, 1+spread] drawn from the workload's private stream.
 */
double
jitter(Rng &rng, double base, double spread)
{
    return base * rng.uniform(1.0 - spread, 1.0 + spread);
}

WorkloadSpec
makeLegacy(int idx)
{
    Rng rng(0x1e9ac700ull + static_cast<std::uint64_t>(idx));
    WorkloadSpec w;
    w.name = (idx % 2 ? "oltp" : "db") + std::to_string(idx / 2 + 1);
    w.cls = WorkloadClass::Legacy;
    TraceGenParams &g = w.gen;
    g.seed = rng.next();
    // Hand-written assembler: dense branches, big footprints, tight
    // dependence chains, scattered data accesses.
    g.branch_frac = jitter(rng, 0.21, 0.12);
    g.cond_branch_share = 0.82;
    g.n_blocks = static_cast<int>(jitter(rng, 3500, 0.35));
    g.loop_branch_frac = 0.52;
    g.periodic_branch_frac = 0.03;
    g.random_branch_frac = jitter(rng, 0.01, 0.4);
    g.bias_margin_min = 0.40;
    g.biased_taken_share = 0.85;
    g.backward_frac = 0.30;
    g.frac_load = jitter(rng, 0.22, 0.15);
    g.frac_store = jitter(rng, 0.11, 0.15);
    g.frac_alumem = jitter(rng, 0.04, 0.3);
    // Proxies for the multi-cycle storage/decimal instructions of
    // S/390 assembler code: unpipelined long ops serialize execution
    // and lower the effective superscalar degree the same way FP ops
    // do in the paper's floating-point discussion.
    g.frac_mul = jitter(rng, 0.065, 0.3);
    g.frac_div = jitter(rng, 0.018, 0.3);
    g.frac_fp = 0.0;
    g.data_working_set = static_cast<std::uint64_t>(
        jitter(rng, 2.0 * (1 << 20), 0.5));
    g.hot_frac = 0.68;
    g.stream_frac = 0.17;
    g.uniform_region_bytes = 2 * 1024;
    // Hand-scheduled assembler consumes values almost immediately:
    // the tight dependences keep the effective superscalar degree
    // low, and (as in the paper's floating-point discussion) a low
    // alpha is what pushes the optimum deeper than SPECint in Fig. 7
    // even though the code is otherwise more stressful.
    g.dep_near = jitter(rng, 0.68, 0.08);
    g.mean_dep_dist = jitter(rng, 2.0, 0.2);
    return w;
}

WorkloadSpec
makeModern(int idx)
{
    Rng rng(0x30de4200ull + static_cast<std::uint64_t>(idx));
    WorkloadSpec w;
    static const char *const names[] = {"websrv",  "javabb",   "xmlparse",
                                        "servlet", "cppcad",   "jitopt",
                                        "collab",  "msgqueue", "approuter",
                                        "gcbench", "uiengine", "restapi"};
    w.name = names[idx % 12];
    w.cls = WorkloadClass::Modern;
    TraceGenParams &g = w.gen;
    g.seed = rng.next();
    // C++/Java server code: call-heavy control flow, medium working
    // sets, moderate dependence distances.
    g.branch_frac = jitter(rng, 0.18, 0.12);
    g.cond_branch_share = 0.78;
    g.n_blocks = static_cast<int>(jitter(rng, 2500, 0.35));
    g.loop_branch_frac = 0.55;
    g.periodic_branch_frac = 0.05;
    g.random_branch_frac = 0.015;
    g.bias_margin_min = 0.32;
    g.biased_taken_share = 0.65;
    g.backward_frac = 0.35;
    g.frac_load = jitter(rng, 0.24, 0.12);
    g.frac_store = jitter(rng, 0.12, 0.15);
    g.frac_alumem = 0.03;
    g.frac_mul = 0.02;
    g.frac_div = 0.005;
    g.frac_fp = 0.01;
    g.data_working_set = static_cast<std::uint64_t>(
        jitter(rng, 1.5 * (1 << 20), 0.5));
    g.hot_frac = 0.62;
    g.stream_frac = 0.22;
    g.uniform_region_bytes = 4 * 1024;
    g.dep_near = jitter(rng, 0.50, 0.12);
    g.mean_dep_dist = jitter(rng, 3.4, 0.2);
    return w;
}

WorkloadSpec
makeSpecInt(int idx, bool is2000)
{
    Rng rng((is2000 ? 0x2000c1ull : 0x95c1ull) +
            static_cast<std::uint64_t>(idx) * 977);
    WorkloadSpec w;
    static const char *const n95[] = {"go95",   "m88ksim", "gcc95",
                                      "compress", "li95",  "ijpeg",
                                      "perl95", "vortex95", "eqn95",
                                      "sc95"};
    static const char *const n2000[] = {"gzip00", "vpr00",  "gcc00",
                                        "mcf00",  "crafty00", "parser00",
                                        "gap00",  "bzip200"};
    w.name = is2000 ? n2000[idx % 8] : n95[idx % 10];
    w.cls = is2000 ? WorkloadClass::SpecInt2000 : WorkloadClass::SpecInt95;
    TraceGenParams &g = w.gen;
    g.seed = rng.next();
    // Loopy compiled integer codes: predictable branches, small
    // footprints, looser dependence chains than "real" workloads.
    g.branch_frac = jitter(rng, 0.15, 0.15);
    g.cond_branch_share = 0.85;
    g.n_blocks = static_cast<int>(jitter(rng, is2000 ? 1300 : 850, 0.35));
    g.loop_branch_frac = 0.66;
    g.periodic_branch_frac = 0.06;
    g.random_branch_frac = 0.015;
    g.bias_margin_min = 0.38;
    g.backward_frac = 0.45;
    g.frac_load = jitter(rng, 0.22, 0.15);
    g.frac_store = jitter(rng, 0.09, 0.2);
    g.frac_alumem = 0.02;
    g.frac_mul = 0.02;
    g.frac_div = 0.003;
    g.frac_fp = 0.0;
    g.data_working_set = static_cast<std::uint64_t>(
        jitter(rng, (is2000 ? 0.6 : 0.35) * (1 << 20), 0.4));
    g.hot_frac = 0.62;
    g.stream_frac = 0.28;
    g.uniform_region_bytes = 4 * 1024;
    g.dep_near = jitter(rng, 0.38, 0.15);
    g.mean_dep_dist = jitter(rng, 5.5, 0.25);
    return w;
}

WorkloadSpec
makeSpecFp(int idx)
{
    Rng rng(0xf9ull + static_cast<std::uint64_t>(idx) * 3571);
    WorkloadSpec w;
    static const char *const names[] = {"tomcatv", "swim",   "su2cor",
                                        "hydro2d", "mgrid",  "applu",
                                        "turb3d",  "apsi",   "wave5",
                                        "fpppp"};
    w.name = names[idx % 10];
    w.cls = WorkloadClass::SpecFp;
    TraceGenParams &g = w.gen;
    g.seed = rng.next();
    // FP loop nests: few and predictable branches, streaming memory,
    // heavy unpipelined FP usage that serializes execution.
    g.branch_frac = jitter(rng, 0.09, 0.25);
    g.cond_branch_share = 0.90;
    g.n_blocks = static_cast<int>(jitter(rng, 700, 0.4));
    g.loop_branch_frac = 0.70;
    g.periodic_branch_frac = 0.10;
    g.random_branch_frac = 0.01;
    g.bias_margin_min = 0.35;
    g.backward_frac = 0.60;
    g.frac_load = jitter(rng, 0.24, 0.15);
    g.frac_store = jitter(rng, 0.10, 0.2);
    g.frac_alumem = 0.01;
    g.frac_mul = 0.01;
    g.frac_div = 0.001;
    // FP intensity varies a lot across the suite, which is what
    // spreads the FP optima across 6..16 stages in Fig. 7.
    g.frac_fp = jitter(rng, 0.30, 0.5);
    g.fp_add_share = 0.45;
    g.fp_mul_share = 0.40;
    g.fp_div_share = 0.08;
    g.data_working_set = static_cast<std::uint64_t>(
        jitter(rng, 4.0 * (1 << 20), 0.5));
    g.hot_frac = 0.30;
    g.stream_frac = 0.55;
    g.uniform_region_bytes = 8 * 1024;
    g.dep_near = jitter(rng, 0.45, 0.2);
    g.mean_dep_dist = jitter(rng, 4.5, 0.25);
    return w;
}

std::vector<WorkloadSpec>
buildCatalog()
{
    std::vector<WorkloadSpec> all;
    all.reserve(55);
    for (int i = 0; i < 15; ++i)
        all.push_back(makeLegacy(i));
    for (int i = 0; i < 12; ++i)
        all.push_back(makeModern(i));
    for (int i = 0; i < 10; ++i)
        all.push_back(makeSpecInt(i, false));
    for (int i = 0; i < 8; ++i)
        all.push_back(makeSpecInt(i, true));
    for (int i = 0; i < 10; ++i)
        all.push_back(makeSpecFp(i));
    PP_ASSERT(all.size() == 55, "catalog must have 55 workloads");

    // Validate every entry at load, before anything simulates: a NaN
    // or out-of-range generator parameter (a bad jitter edit, a
    // corrupted constant) must fail here naming the workload and the
    // field, not propagate garbage into a 55x24 grid.
    for (const WorkloadSpec &w : all) {
        if (w.name.empty())
            PP_FATAL("catalog entry with empty workload name");
        const std::string error = w.gen.validationError();
        if (!error.empty())
            PP_FATAL("workload '", w.name, "': ", error);
    }
    return all;
}

} // namespace

const std::vector<WorkloadSpec> &
workloadCatalog()
{
    static const std::vector<WorkloadSpec> catalog = buildCatalog();
    return catalog;
}

std::vector<WorkloadSpec>
workloadsOfClass(WorkloadClass cls)
{
    std::vector<WorkloadSpec> out;
    for (const auto &w : workloadCatalog()) {
        if (w.cls == cls)
            out.push_back(w);
    }
    return out;
}

const WorkloadSpec &
findWorkload(const std::string &name)
{
    for (const auto &w : workloadCatalog()) {
        if (w.name == name)
            return w;
    }
    PP_FATAL("no such workload: ", name);
}

} // namespace pipedepth
