/**
 * @file
 * Activity-based power accounting over simulation results.
 *
 * Implements the paper's simulation power methodology (Sec. 3):
 * "We monitor the usage of each microarchitectural unit of the
 * processor every cycle, and use this information to calculate the
 * related power. Each unit is assigned a power factor, and we
 * calculate power for both a complete clock gating model and a
 * non-clock gating model."
 *
 *  - Each unit has a base latch count per stage; a unit pipelined to
 *    depth d holds base * d^beta latches (the paper's per-unit latch
 *    scale factor p^beta applied to "the pipeline depth of the actual
 *    unit, not the overall pipeline depth").
 *  - Merged units (contracted configurations) share cycles and "the
 *    intervening latches can be eliminated. Therefore, the power
 *    assigned is the greater of the power requirement for each unit."
 *  - Clock-gated dynamic energy charges a unit only on cycles it did
 *    work; the non-gated model charges every unit every cycle.
 *  - Leakage burns on all latches at all times.
 *
 * Because only some units deepen with p (queues, completion and
 * retirement do not), the *overall* latch count grows slower than any
 * single unit's d^beta — this is exactly the paper's Fig. 3, where
 * per-unit beta = 1.3 yields overall growth ~ p^1.1.
 */

#ifndef PIPEDEPTH_POWER_ACTIVITY_POWER_HH
#define PIPEDEPTH_POWER_ACTIVITY_POWER_HH

#include <array>

#include "uarch/sim_result.hh"

namespace pipedepth
{

/** Per-unit power/latch factors. */
struct UnitPowerFactors
{
    /** Base latch count per pipeline stage of each unit. */
    std::array<double, kNumUnits> base_latches{};
    /** Per-unit latch growth exponent (the paper's beta = 1.3). */
    double beta_unit = 1.3;

    /** The factor set used throughout the reproduction. */
    static UnitPowerFactors defaults();
};

/** Power computed from one simulation run. */
struct SimPower
{
    double latch_count = 0.0;     //!< total effective latches
    double dynamic_gated = 0.0;   //!< W, fine-grained clock gating
    double dynamic_ungated = 0.0; //!< W, all units switch every cycle
    double leakage = 0.0;         //!< W

    double
    total(bool gated) const
    {
        return (gated ? dynamic_gated : dynamic_ungated) + leakage;
    }

    double
    leakageFraction(bool gated) const
    {
        return leakage / total(gated);
    }
};

/**
 * Computes power and power/performance metrics from SimResults under
 * fixed per-latch energies.
 */
class ActivityPowerModel
{
  public:
    /** Default: the standard factor set, p_d = 1, no leakage. */
    ActivityPowerModel()
        : ActivityPowerModel(UnitPowerFactors::defaults(), 1.0, 0.0)
    {
    }

    /**
     * @param factors per-unit latch factors
     * @param p_d     dynamic energy per latch per active cycle
     *                (W * FO4-time)
     * @param p_l     leakage power per latch (W)
     */
    ActivityPowerModel(const UnitPowerFactors &factors, double p_d,
                       double p_l);

    /** Effective latch count of a configuration (merge-aware). */
    double latchCount(const PipelineConfig &config) const;

    /** Power of one simulated run. */
    SimPower power(const SimResult &sim) const;

    /** BIPS^m/W for one run (consistent arbitrary units). */
    double metric(const SimResult &sim, double m, bool gated) const;

    /**
     * Pick p_l so leakage is @p fraction of gated total power for the
     * reference run @p sim (the paper assumes 15%). Returns a model
     * with the new p_l and the same p_d/factors.
     */
    ActivityPowerModel withLeakageFraction(const SimResult &sim,
                                           double fraction) const;

    double pd() const { return p_d_; }
    double pl() const { return p_l_; }
    const UnitPowerFactors &factors() const { return factors_; }

  private:
    /**
     * Effective latches of each unit after merge-group max-combining;
     * entries of merged-away units are zeroed and their group host
     * carries the max.
     */
    std::array<double, kNumUnits>
    effectiveLatches(const PipelineConfig &config) const;

    UnitPowerFactors factors_;
    double p_d_;
    double p_l_;
};

} // namespace pipedepth

#endif // PIPEDEPTH_POWER_ACTIVITY_POWER_HH
