#include "power/activity_power.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace pipedepth
{

UnitPowerFactors
UnitPowerFactors::defaults()
{
    UnitPowerFactors f;
    auto set = [&f](Unit u, double latches) {
        f.base_latches[static_cast<std::size_t>(u)] = latches;
    };
    // Relative per-stage latch budgets of the units. The absolute
    // scale is arbitrary (metrics are reported in consistent units);
    // the ratios follow the usual split: caches and execution
    // datapaths dominate, queues and retirement bookkeeping are
    // small.
    set(Unit::Fetch, 1000.0);
    set(Unit::Decode, 2000.0);
    set(Unit::Rename, 1400.0);
    set(Unit::AgenQ, 450.0);
    set(Unit::Agen, 900.0);
    set(Unit::DCache, 2600.0);
    set(Unit::ExecQ, 650.0);
    set(Unit::Fxu, 2300.0);
    set(Unit::Fpu, 2400.0);
    set(Unit::Complete, 800.0);
    set(Unit::Retire, 500.0);
    return f;
}

ActivityPowerModel::ActivityPowerModel(const UnitPowerFactors &factors,
                                       double p_d, double p_l)
    : factors_(factors), p_d_(p_d), p_l_(p_l)
{
    if (p_d < 0.0 || p_l < 0.0)
        PP_FATAL("per-latch powers must be non-negative");
    if (factors.beta_unit <= 0.0)
        PP_FATAL("beta_unit must be positive");
}

namespace
{

/** Group decomposition: merge groups first, then singleton units. */
std::vector<std::vector<Unit>>
groupsOf(const PipelineConfig &config)
{
    std::vector<std::vector<Unit>> groups = config.merge_groups;
    std::array<bool, kNumUnits> covered{};
    for (const auto &g : groups) {
        for (Unit u : g)
            covered[static_cast<std::size_t>(u)] = true;
    }
    for (std::size_t u = 0; u < kNumUnits; ++u) {
        if (!covered[u])
            groups.push_back({static_cast<Unit>(u)});
    }
    return groups;
}

} // namespace

std::array<double, kNumUnits>
ActivityPowerModel::effectiveLatches(const PipelineConfig &config) const
{
    std::array<double, kNumUnits> latches{};
    for (const auto &group : groupsOf(config)) {
        // Cycles shared by the group: the max member depth (members
        // with zero depth ride along on the host's cycles).
        int group_depth = 0;
        for (Unit u : group) {
            group_depth = std::max(
                group_depth,
                config.unit_depth[static_cast<std::size_t>(u)]);
        }
        if (group_depth == 0)
            continue; // absent hardware (e.g. rename when in-order)
        // "The power assigned is the greater of the power requirement
        // for each unit": keep the max requirement on the deepest
        // (host) member, zero on the rest.
        double best = 0.0;
        Unit host = group.front();
        for (Unit u : group) {
            const std::size_t i = static_cast<std::size_t>(u);
            const int d = std::max(config.unit_depth[i], group_depth);
            const double req =
                factors_.base_latches[i] *
                std::pow(static_cast<double>(d), factors_.beta_unit);
            if (req > best) {
                best = req;
                host = u;
            }
        }
        latches[static_cast<std::size_t>(host)] = best;
    }
    return latches;
}

double
ActivityPowerModel::latchCount(const PipelineConfig &config) const
{
    const auto latches = effectiveLatches(config);
    double total = 0.0;
    for (double l : latches)
        total += l;
    return total;
}

SimPower
ActivityPowerModel::power(const SimResult &sim) const
{
    PP_ASSERT(sim.cycles > 0, "empty simulation result");
    const auto &config = sim.config;
    const double time_fo4 = sim.timeFo4();

    SimPower out;
    double gated_switches = 0.0;
    double ungated_switches = 0.0;

    for (const auto &group : groupsOf(config)) {
        int group_depth = 0;
        double req = 0.0;
        std::uint64_t active = 0;
        for (Unit u : group) {
            const std::size_t i = static_cast<std::size_t>(u);
            group_depth = std::max(group_depth, config.unit_depth[i]);
        }
        if (group_depth == 0)
            continue;
        for (Unit u : group) {
            const std::size_t i = static_cast<std::size_t>(u);
            const int d = std::max(config.unit_depth[i], group_depth);
            req = std::max(req, factors_.base_latches[i] *
                                    std::pow(static_cast<double>(d),
                                             factors_.beta_unit));
            active = std::max(active, sim.units[i].active_cycles);
        }
        out.latch_count += req;
        gated_switches += req * static_cast<double>(active);
        ungated_switches += req * static_cast<double>(sim.cycles);
    }

    out.dynamic_gated = p_d_ * gated_switches / time_fo4;
    out.dynamic_ungated = p_d_ * ungated_switches / time_fo4;
    out.leakage = p_l_ * out.latch_count;
    return out;
}

double
ActivityPowerModel::metric(const SimResult &sim, double m,
                           bool gated) const
{
    PP_ASSERT(m > 0.0, "metric exponent must be positive");
    const SimPower p = power(sim);
    const double watts = p.total(gated);
    PP_ASSERT(watts > 0.0, "zero power");
    return std::pow(sim.bips(), m) / watts;
}

ActivityPowerModel
ActivityPowerModel::withLeakageFraction(const SimResult &sim,
                                        double fraction) const
{
    if (fraction < 0.0 || fraction >= 1.0)
        PP_FATAL("leakage fraction must be in [0, 1)");
    ActivityPowerModel probe(factors_, p_d_, 0.0);
    const SimPower base = probe.power(sim);
    PP_ASSERT(base.latch_count > 0.0, "no latches");
    const double p_l = fraction / (1.0 - fraction) * base.dynamic_gated /
                       base.latch_count;
    return ActivityPowerModel(factors_, p_d_, p_l);
}

} // namespace pipedepth
