/**
 * @file
 * Instruction trace representation.
 *
 * The paper's methodology is trace-driven simulation: "The simulator
 * uses design parameters that describe the organization of the
 * processor and a trace tape, as inputs." A Trace here is the
 * in-memory equivalent of that trace tape: the dynamic instruction
 * stream with operands, memory addresses and branch outcomes.
 */

#ifndef PIPEDEPTH_TRACE_TRACE_HH
#define PIPEDEPTH_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "isa/isa.hh"

namespace pipedepth
{

/** One dynamic instruction in a trace. */
struct TraceRecord
{
    std::uint64_t pc = 0;       //!< instruction address
    std::uint64_t mem_addr = 0; //!< effective address (RX ops only)
    OpClass op = OpClass::IntAlu;
    std::uint8_t dst = kNoReg;  //!< destination register or kNoReg
    std::uint8_t src1 = kNoReg; //!< source registers (kNoReg = unused)
    std::uint8_t src2 = kNoReg;
    std::uint8_t src3 = kNoReg; //!< base/index register for RX ops
    bool taken = false;         //!< branch outcome (branches only)
    std::uint64_t target = 0;   //!< branch target (branches only)
};

/** A dynamic instruction stream plus identifying metadata. */
struct Trace
{
    std::string name;                 //!< workload name
    std::uint64_t seed = 0;           //!< generator seed (0 = captured)
    std::vector<TraceRecord> records; //!< the dynamic stream, in order

    std::size_t size() const { return records.size(); }
    bool empty() const { return records.empty(); }
    const TraceRecord &operator[](std::size_t i) const
    {
        return records[i];
    }
};

/** Aggregate statistics of a trace (mix audit; used in tests/docs). */
struct TraceMix
{
    std::uint64_t total = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t fp_ops = 0;
    std::uint64_t mem_ops = 0; //!< all RX-format ops
    double frac(std::uint64_t n) const
    {
        return total ? static_cast<double>(n) / total : 0.0;
    }
};

/** Compute the instruction-mix summary of a trace. */
TraceMix computeMix(const Trace &trace);

} // namespace pipedepth

#endif // PIPEDEPTH_TRACE_TRACE_HH
