#include "trace/generator.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "telemetry/telemetry.hh"

namespace pipedepth
{

std::string
TraceGenParams::validationError() const
{
    std::string error;
    auto fail = [&error](auto &&...parts) {
        if (error.empty())
            error = logging_detail::concat(parts...);
    };
    // NaN compares false against every bound, so plain range checks
    // silently wave it through into the generator; reject non-finite
    // values explicitly, naming the field.
    auto check_finite = [&](double v, const char *what) {
        if (!std::isfinite(v))
            fail(what, " must be finite (got ", v, ")");
    };
    auto check_frac = [&](double v, const char *what) {
        check_finite(v, what);
        if (v < 0.0 || v > 1.0)
            fail(what, " must be in [0, 1] (got ", v, ")");
    };
    check_frac(frac_load, "frac_load");
    check_frac(frac_store, "frac_store");
    check_frac(frac_alumem, "frac_alumem");
    check_frac(frac_mul, "frac_mul");
    check_frac(frac_div, "frac_div");
    check_frac(frac_fp, "frac_fp");
    if (frac_load + frac_store + frac_alumem + frac_mul + frac_div +
            frac_fp > 1.0) {
        fail("instruction-mix fractions exceed 1");
    }
    check_frac(fp_add_share, "fp_add_share");
    check_frac(fp_mul_share, "fp_mul_share");
    check_frac(fp_div_share, "fp_div_share");
    if (fp_add_share + fp_mul_share + fp_div_share > 1.0)
        fail("FP share fractions exceed 1");
    check_frac(branch_frac, "branch_frac");
    if (branch_frac >= 0.9)
        fail("branch_frac must be < 0.9 (got ", branch_frac, ")");
    check_frac(cond_branch_share, "cond_branch_share");
    if (n_blocks < 2)
        fail("need at least 2 basic blocks (got ", n_blocks, ")");
    check_frac(loop_branch_frac, "loop_branch_frac");
    check_frac(periodic_branch_frac, "periodic_branch_frac");
    check_frac(random_branch_frac, "random_branch_frac");
    if (loop_branch_frac + periodic_branch_frac + random_branch_frac > 1.0)
        fail("branch behaviour fractions exceed 1");
    check_finite(bias_margin_min, "bias_margin_min");
    if (bias_margin_min < 0.0 || bias_margin_min > 0.5)
        fail("bias_margin_min must be in [0, 0.5]");
    check_frac(biased_taken_share, "biased_taken_share");
    check_frac(backward_frac, "backward_frac");
    if (data_working_set < 4096)
        fail("data working set must be at least 4 KiB");
    if (uniform_region_bytes < 64)
        fail("uniform_region_bytes must be at least one line");
    check_frac(hot_frac, "hot_frac");
    check_frac(stream_frac, "stream_frac");
    if (hot_frac + stream_frac > 1.0)
        fail("memory style fractions exceed 1");
    check_frac(dep_near, "dep_near");
    check_finite(mean_dep_dist, "mean_dep_dist");
    if (mean_dep_dist < 1.0)
        fail("mean_dep_dist must be >= 1");
    if (length == 0)
        fail("trace length must be positive");
    return error;
}

void
TraceGenParams::validate() const
{
    const std::string error = validationError();
    if (!error.empty())
        PP_FATAL(error);
}

namespace
{

/** How a static conditional branch decides its outcome. */
enum class BranchMode : std::uint8_t
{
    Loop,     //!< strongly taken (loop back-edge), taken bias ~0.95
    Biased,   //!< fixed bias away from 0.5
    Periodic, //!< deterministic pattern of period 2..8
    Random,   //!< 50/50 every execution
};

/** Memory access style of a static RX instruction. */
enum class MemStyle : std::uint8_t
{
    Hot,    //!< uniform within a 4 KiB stack-like region
    Stream, //!< sequential, advancing by a fixed stride
    Uniform,//!< uniform over the whole working set
};

/** A static instruction template. */
struct StaticInstr
{
    OpClass op = OpClass::IntAlu;
    MemStyle mem_style = MemStyle::Hot;
    std::uint64_t mem_base = 0;   //!< region base / stream cursor origin
    std::uint64_t mem_span = 0;   //!< region size for uniform styles
    std::uint32_t stream_stride = 8;
};

/** A static conditional-branch descriptor. */
struct StaticBranch
{
    BranchMode mode = BranchMode::Biased;
    double taken_bias = 0.5;
    std::uint8_t period = 2;      //!< for Periodic
    std::uint8_t pattern_taken = 1; //!< taken executions per period
    int taken_target = 0;         //!< block index
    std::uint64_t exec_count = 0; //!< dynamic execution counter
};

/** A basic block: straight-line body plus optional terminator. */
struct Block
{
    std::uint64_t start_pc = 0;
    std::vector<StaticInstr> body; //!< excludes the terminator
    bool has_branch = true;
    bool conditional = true;
    OpClass branch_op = OpClass::BranchCond;
    StaticBranch branch;
};

constexpr std::uint64_t kCodeBase = 0x400000;
constexpr std::uint64_t kDataBase = 0x10000000;
constexpr std::uint64_t kHotRegion = 4096;
constexpr int kInstrBytes = 4;

/** Sample a non-branch op class from the mix. */
OpClass
sampleBodyOp(const TraceGenParams &p, Rng &rng)
{
    const double r = rng.uniform();
    double acc = p.frac_load;
    if (r < acc)
        return OpClass::Load;
    acc += p.frac_store;
    if (r < acc)
        return OpClass::Store;
    acc += p.frac_alumem;
    if (r < acc)
        return OpClass::IntAluMem;
    acc += p.frac_mul;
    if (r < acc)
        return OpClass::IntMul;
    acc += p.frac_div;
    if (r < acc)
        return OpClass::IntDiv;
    acc += p.frac_fp;
    if (r < acc) {
        const double f = rng.uniform();
        if (f < p.fp_add_share)
            return OpClass::FpAdd;
        if (f < p.fp_add_share + p.fp_mul_share)
            return OpClass::FpMul;
        if (f < p.fp_add_share + p.fp_mul_share + p.fp_div_share)
            return OpClass::FpDiv;
        return OpClass::FpLong;
    }
    return OpClass::IntAlu;
}

/** The static program: blocks plus layout. */
struct StaticProgram
{
    std::vector<Block> blocks;
};

StaticProgram
buildProgram(const TraceGenParams &p, Rng &rng)
{
    StaticProgram prog;
    prog.blocks.resize(static_cast<std::size_t>(p.n_blocks));

    // Mean body length such that branches are branch_frac of all
    // instructions: body + 1 terminator, E[len] = 1/branch_frac.
    const double mean_total = 1.0 / std::max(p.branch_frac, 0.02);
    const double mean_body = std::max(0.0, mean_total - 1.0);

    std::uint64_t pc = kCodeBase;
    for (int b = 0; b < p.n_blocks; ++b) {
        Block &blk = prog.blocks[static_cast<std::size_t>(b)];
        blk.start_pc = pc;

        // Body length roughly uniform in [0.5, 1.5] x mean: enough
        // variety for realistic block-size spread without the heavy
        // short-block tail of a geometric, which would bias the
        // dynamic branch fraction well above branch_frac (short
        // blocks execute disproportionately often).
        const double lo = std::max(0.0, 0.5 * mean_body);
        const double hi = 1.5 * mean_body + 1.0;
        std::size_t body_len = static_cast<std::size_t>(
            std::llround(rng.uniform(lo, hi)));
        body_len = std::min<std::size_t>(body_len, 64);
        for (std::size_t i = 0; i < body_len; ++i) {
            StaticInstr si;
            si.op = sampleBodyOp(p, rng);
            if (opTraits(si.op).is_mem) {
                const double style = rng.uniform();
                if (style < p.hot_frac) {
                    si.mem_style = MemStyle::Hot;
                    si.mem_base = kDataBase;
                    si.mem_span = kHotRegion;
                } else if (style < p.hot_frac + p.stream_frac) {
                    // Streams wrap within the working set; mem_span
                    // holds the stream's random starting offset.
                    si.mem_style = MemStyle::Stream;
                    si.mem_base = kDataBase + kHotRegion;
                    si.mem_span = rng.below(p.data_working_set) & ~7ull;
                    si.stream_stride = 8;
                } else {
                    // A private region inside the working set; see
                    // TraceGenParams::uniform_region_bytes.
                    si.mem_style = MemStyle::Uniform;
                    si.mem_span = std::min<std::uint64_t>(
                        p.uniform_region_bytes, p.data_working_set);
                    const std::uint64_t slack =
                        p.data_working_set - si.mem_span;
                    si.mem_base = kDataBase + kHotRegion +
                                  (slack ? (rng.below(slack) & ~63ull)
                                         : 0);
                }
            }
            blk.body.push_back(si);
        }

        blk.conditional = rng.bernoulli(p.cond_branch_share);
        blk.branch_op = blk.conditional ? OpClass::BranchCond
                                        : OpClass::BranchUncond;

        // Behaviour of the terminator.
        StaticBranch &br = blk.branch;
        const double mode = rng.uniform();
        if (mode < p.loop_branch_frac) {
            br.mode = BranchMode::Loop;
            br.taken_bias = rng.uniform(0.92, 0.985);
        } else if (mode < p.loop_branch_frac + p.periodic_branch_frac) {
            br.mode = BranchMode::Periodic;
            br.period = static_cast<std::uint8_t>(rng.range(2, 8));
            br.pattern_taken =
                static_cast<std::uint8_t>(rng.range(1, br.period - 1));
        } else if (mode < p.loop_branch_frac + p.periodic_branch_frac +
                              p.random_branch_frac) {
            br.mode = BranchMode::Random;
            br.taken_bias = 0.5;
        } else {
            br.mode = BranchMode::Biased;
            const double margin = rng.uniform(p.bias_margin_min, 0.48);
            br.taken_bias = rng.bernoulli(p.biased_taken_share)
                                ? 0.5 + margin
                                : 0.5 - margin;
        }

        pc += static_cast<std::uint64_t>(
            (blk.body.size() + 1) * kInstrBytes);
    }

    // Wire taken targets once layout is known. Loop branches jump
    // backward to nearby blocks; other conditionals follow the
    // backward_frac mix. Unconditional branches always jump forward:
    // a cycle consisting only of unconditional branches would trap
    // the walk forever (conditional back-edges always escape through
    // their fall-through path eventually).
    for (int b = 0; b < p.n_blocks; ++b) {
        Block &blk = prog.blocks[static_cast<std::size_t>(b)];
        StaticBranch &br = blk.branch;
        if (!blk.conditional) {
            br.taken_target = static_cast<int>(
                (static_cast<std::uint64_t>(b) + rng.range(1, 16)) %
                static_cast<std::uint64_t>(p.n_blocks));
            continue;
        }
        const bool backward =
            br.mode == BranchMode::Loop || rng.bernoulli(p.backward_frac);
        if (backward && b > 0) {
            const int reach = std::min(b, 24);
            br.taken_target = b - static_cast<int>(rng.range(1, reach));
        } else {
            br.taken_target =
                static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(p.n_blocks)));
        }
    }
    return prog;
}

/** Tracks recent register producers for dependence-distance sampling. */
class DependenceTracker
{
  public:
    explicit DependenceTracker(Rng &rng) : rng_(rng)
    {
    }

    /** Record that @p reg was written (kNoReg is ignored). */
    void
    wrote(std::uint8_t reg)
    {
        if (reg == kNoReg)
            return;
        recent_.push_front(reg);
        if (recent_.size() > 64)
            recent_.pop_back();
    }

    /**
     * Pick a source register: with probability @p near_prob a recent
     * producer at geometric distance (mean @p mean_dist), else a
     * uniformly random register from @p lo..hi.
     */
    std::uint8_t
    pick(double near_prob, double mean_dist, std::uint8_t lo,
         std::uint8_t hi)
    {
        if (!recent_.empty() && rng_.bernoulli(near_prob)) {
            std::size_t d = rng_.geometric(1.0 / mean_dist);
            d = std::min(d, recent_.size() - 1);
            const std::uint8_t reg = recent_[d];
            if (reg >= lo && reg <= hi)
                return reg;
        }
        return static_cast<std::uint8_t>(rng_.range(lo, hi));
    }

  private:
    Rng &rng_;
    std::deque<std::uint8_t> recent_;
};

} // namespace

Trace
generateTrace(const TraceGenParams &params, const std::string &name)
{
    TELEM_SPAN(span, "trace.generate");
    span.tag("workload", name);
    span.tag("length", static_cast<std::uint64_t>(params.length));

    params.validate();
    Rng rng(params.seed);
    StaticProgram prog = buildProgram(params, rng);

    // Per-static-instruction stream cursors (indexed by flat id).
    std::vector<std::uint64_t> stream_cursor;
    std::vector<std::size_t> stream_index(prog.blocks.size(), 0);
    std::size_t flat = 0;
    for (auto &blk : prog.blocks) {
        stream_index[static_cast<std::size_t>(&blk - prog.blocks.data())] =
            flat;
        flat += blk.body.size();
    }
    stream_cursor.assign(flat, 0);

    Trace trace;
    trace.name = name;
    trace.seed = params.seed;
    trace.records.reserve(params.length);

    DependenceTracker deps(rng);
    std::size_t cur = 0; // current block

    while (trace.records.size() < params.length) {
        Block &blk = prog.blocks[cur];
        const std::size_t base_flat = stream_index[cur];

        for (std::size_t i = 0;
             i < blk.body.size() && trace.records.size() < params.length;
             ++i) {
            const StaticInstr &si = blk.body[i];
            const OpTraits &t = opTraits(si.op);
            TraceRecord r;
            r.op = si.op;
            r.pc = blk.start_pc + i * kInstrBytes;

            const bool fp = t.is_fp;
            const std::uint8_t lo = fp ? kFprBase : 0;
            const std::uint8_t hi =
                fp ? static_cast<std::uint8_t>(kFprBase + kNumFprs - 1)
                   : static_cast<std::uint8_t>(kNumGprs - 1);

            if (!t.is_store) {
                r.dst = static_cast<std::uint8_t>(rng.range(lo, hi));
            }
            r.src1 = deps.pick(params.dep_near, params.mean_dep_dist, lo,
                               hi);
            if (si.op != OpClass::Load)
                r.src2 = deps.pick(params.dep_near, params.mean_dep_dist,
                                   lo, hi);
            if (t.is_mem) {
                // Base register for address generation is an integer
                // register even for FP memory ops.
                r.src3 = deps.pick(params.dep_near, params.mean_dep_dist,
                                   0, kNumGprs - 1);
                switch (si.mem_style) {
                  case MemStyle::Hot:
                    r.mem_addr =
                        si.mem_base + (rng.below(si.mem_span) & ~7ull);
                    break;
                  case MemStyle::Stream: {
                    std::uint64_t &cursor =
                        stream_cursor[base_flat + i];
                    r.mem_addr = si.mem_base +
                                 (si.mem_span + cursor) %
                                     params.data_working_set;
                    cursor += si.stream_stride;
                    break;
                  }
                  case MemStyle::Uniform:
                    r.mem_addr =
                        si.mem_base + (rng.below(si.mem_span) & ~7ull);
                    break;
                }
            }
            deps.wrote(r.dst);
            trace.records.push_back(r);
        }

        if (trace.records.size() >= params.length)
            break;

        // Terminator branch.
        TraceRecord br;
        br.op = blk.branch_op;
        br.pc = blk.start_pc + blk.body.size() * kInstrBytes;
        br.src1 = deps.pick(params.dep_near, params.mean_dep_dist, 0,
                            kNumGprs - 1);

        StaticBranch &sb = blk.branch;
        bool taken = true;
        if (blk.conditional) {
            switch (sb.mode) {
              case BranchMode::Loop:
              case BranchMode::Biased:
                taken = rng.bernoulli(sb.taken_bias);
                break;
              case BranchMode::Periodic:
                taken = (sb.exec_count % sb.period) < sb.pattern_taken;
                break;
              case BranchMode::Random:
                taken = rng.bernoulli(0.5);
                break;
            }
        }
        ++sb.exec_count;
        br.taken = taken;

        // The target field is the taken destination regardless of the
        // outcome (as a real trace tape would record it).
        br.target =
            prog.blocks[static_cast<std::size_t>(sb.taken_target)]
                .start_pc;
        trace.records.push_back(br);
        cur = taken ? static_cast<std::size_t>(sb.taken_target)
                    : (cur + 1) % prog.blocks.size();
    }

    return trace;
}

} // namespace pipedepth
