/**
 * @file
 * Synthetic workload trace generation.
 *
 * The paper uses 55 proprietary trace tapes "carefully selected to
 * accurately reflect the instruction mix, module mix and branch
 * prediction characteristics of the entire application". We cannot
 * ship those, so this generator synthesizes traces with controllable
 * versions of exactly the characteristics the pipeline-depth study is
 * sensitive to:
 *
 *  - instruction mix (loads/stores/ALU/branches/FP, RR vs RX);
 *  - control-flow structure: a static CFG of basic blocks is built
 *    first and then *walked*, so branch-predictor and I-cache
 *    behaviour emerge from real static branches with stable
 *    per-branch statistics rather than from i.i.d. coin flips;
 *  - branch predictability: per-branch behaviour is loop-like,
 *    biased, periodic, or random in configurable proportions;
 *  - memory behaviour: per-static-instruction access styles (hot
 *    stack region, streaming, or uniform over a working set) so
 *    D-cache miss rates follow the working-set size;
 *  - register dependence distances (geometric), which set the
 *    load-use and FP interlock frequencies.
 *
 * Everything is driven by one seeded Rng: the same params produce the
 * same trace on every platform.
 */

#ifndef PIPEDEPTH_TRACE_GENERATOR_HH
#define PIPEDEPTH_TRACE_GENERATOR_HH

#include <cstdint>

#include "trace/trace.hh"

namespace pipedepth
{

/** Behavioural parameters of a synthetic workload. */
struct TraceGenParams
{
    std::uint64_t seed = 1;      //!< RNG seed; same seed = same trace
    std::size_t length = 200000; //!< dynamic instructions to emit

    /// @name Instruction mix (fractions of non-branch instructions;
    /// the remainder is plain IntAlu)
    /// @{
    double frac_load = 0.22;
    double frac_store = 0.10;
    double frac_alumem = 0.05; //!< RX ALU ops with a memory operand
    double frac_mul = 0.02;
    double frac_div = 0.003;
    double frac_fp = 0.0;      //!< total FP fraction
    double fp_add_share = 0.45; //!< shares within the FP fraction
    double fp_mul_share = 0.40;
    double fp_div_share = 0.10; //!< remainder of FP goes to FpLong
    /// @}

    /// @name Control flow
    /// @{
    double branch_frac = 0.18;      //!< branches per instruction
    double cond_branch_share = 0.85; //!< conditional share of branches
    int n_blocks = 600;             //!< static basic blocks
    double loop_branch_frac = 0.35; //!< loop-like (strongly taken)
    double periodic_branch_frac = 0.15; //!< pattern (history) branches
    double random_branch_frac = 0.10;   //!< genuinely 50/50 branches
    double bias_margin_min = 0.20;  //!< min |bias-0.5| of biased branches
    /**
     * Probability a biased branch is biased *toward* taken. Dense
     * mostly-taken branches fragment fetch groups (one redirect
     * bubble per taken branch), which lowers the effective
     * superscalar degree without adding depth-scaled hazards —
     * characteristic of legacy assembler code.
     */
    double biased_taken_share = 0.5;
    double backward_frac = 0.40;    //!< taken targets that jump backward
    /// @}

    /// @name Memory behaviour
    /// @{
    std::uint64_t data_working_set = 1ull << 20; //!< bytes
    double hot_frac = 0.45;    //!< stack-like accesses to a 4 KiB region
    double stream_frac = 0.25; //!< sequential streaming accesses
    /**
     * Remaining accesses are uniform within a per-static-instruction
     * region of this size placed inside the working set: static
     * instructions in hot loops keep their region cache-resident
     * (temporal locality), cold ones thrash. Larger regions and
     * larger working sets are more cache-hostile.
     */
    std::uint64_t uniform_region_bytes = 32 * 1024;
    /// @}

    /// @name Register dependences
    /// @{
    double dep_near = 0.55;     //!< P(src is a recent producer)
    double mean_dep_dist = 3.0; //!< geometric mean producer distance
    /// @}

    /**
     * First validation failure as a message naming the offending
     * field ("" when the parameters are usable). NaN and other
     * non-finite values are rejected explicitly — they slip through
     * plain range comparisons. The catalog prefixes this with the
     * workload name at load time.
     */
    std::string validationError() const;

    /** Abort (fatal) on out-of-range parameters. */
    void validate() const;
};

/**
 * Generate a synthetic trace. The generator first builds a static
 * program (blocks, per-branch behaviour, per-instruction memory
 * styles) from the seed, then walks it for params.length dynamic
 * instructions.
 *
 * @param params workload behaviour knobs
 * @param name   workload name stamped into the trace
 */
Trace generateTrace(const TraceGenParams &params, const std::string &name);

} // namespace pipedepth

#endif // PIPEDEPTH_TRACE_GENERATOR_HH
