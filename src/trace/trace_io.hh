/**
 * @file
 * Binary trace file format ("trace tapes").
 *
 * Layout (little-endian):
 *   header:  magic "PPTR", u32 version, u64 seed, u64 record count,
 *            u32 name length, name bytes
 *   records: packed 40-byte records (see trace_io.cc)
 *   footer:  u64 FNV-1a checksum over all record bytes
 *
 * The checksum catches truncated or corrupted tapes, which in a
 * trace-driven methodology silently skew every downstream number.
 */

#ifndef PIPEDEPTH_TRACE_TRACE_IO_HH
#define PIPEDEPTH_TRACE_TRACE_IO_HH

#include <string>

#include "trace/trace.hh"

namespace pipedepth
{

/** Serialize @p trace to @p path. Fatal on I/O failure. */
void writeTrace(const Trace &trace, const std::string &path);

/**
 * Load a trace tape. Fatal on missing file, bad magic, version
 * mismatch, truncation, or checksum failure.
 */
Trace readTrace(const std::string &path);

/** Current trace-format version. */
constexpr std::uint32_t kTraceFormatVersion = 1;

} // namespace pipedepth

#endif // PIPEDEPTH_TRACE_TRACE_IO_HH
