#include "trace/trace.hh"

namespace pipedepth
{

TraceMix
computeMix(const Trace &trace)
{
    TraceMix mix;
    mix.total = trace.size();
    for (const auto &r : trace.records) {
        const OpTraits &t = opTraits(r.op);
        if (r.op == OpClass::Load)
            ++mix.loads;
        if (t.is_store)
            ++mix.stores;
        if (t.is_branch) {
            ++mix.branches;
            if (r.taken)
                ++mix.taken_branches;
        }
        if (t.is_fp)
            ++mix.fp_ops;
        if (t.is_mem)
            ++mix.mem_ops;
    }
    return mix;
}

} // namespace pipedepth
