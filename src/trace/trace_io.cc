#include "trace/trace_io.hh"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hh"

namespace pipedepth
{

namespace
{

constexpr char kMagic[4] = {'P', 'P', 'T', 'R'};
constexpr std::size_t kRecordBytes = 40;

/** FNV-1a over a byte buffer, continuing from @p hash. */
std::uint64_t
fnv1a(const unsigned char *data, std::size_t len, std::uint64_t hash)
{
    for (std::size_t i = 0; i < len; ++i) {
        hash ^= data[i];
        hash *= 1099511628211ULL;
    }
    return hash;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;

void
packU64(unsigned char *buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint64_t
unpackU64(const unsigned char *buf)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
    return v;
}

void
packRecord(unsigned char *buf, const TraceRecord &r)
{
    packU64(buf + 0, r.pc);
    packU64(buf + 8, r.mem_addr);
    packU64(buf + 16, r.target);
    buf[24] = static_cast<unsigned char>(r.op);
    buf[25] = r.dst;
    buf[26] = r.src1;
    buf[27] = r.src2;
    buf[28] = r.src3;
    buf[29] = r.taken ? 1 : 0;
    std::memset(buf + 30, 0, kRecordBytes - 30);
}

TraceRecord
unpackRecord(const unsigned char *buf)
{
    TraceRecord r;
    r.pc = unpackU64(buf + 0);
    r.mem_addr = unpackU64(buf + 8);
    r.target = unpackU64(buf + 16);
    const auto op = buf[24];
    if (op >= kNumOpClasses)
        PP_FATAL("trace record has invalid op class ", int(op));
    r.op = static_cast<OpClass>(op);
    r.dst = buf[25];
    r.src1 = buf[26];
    r.src2 = buf[27];
    r.src3 = buf[28];
    r.taken = buf[29] != 0;
    return r;
}

struct FileCloser
{
    void operator()(std::FILE *f) const
    {
        if (f)
            std::fclose(f);
    }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

void
writeTrace(const Trace &trace, const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "wb"));
    if (!f)
        PP_FATAL("cannot open trace file for writing: ", path);

    auto put = [&](const void *data, std::size_t len) {
        if (std::fwrite(data, 1, len, f.get()) != len)
            PP_FATAL("short write to trace file: ", path);
    };

    unsigned char hdr[4 + 4 + 8 + 8 + 4];
    std::memcpy(hdr, kMagic, 4);
    hdr[4] = kTraceFormatVersion & 0xff;
    hdr[5] = (kTraceFormatVersion >> 8) & 0xff;
    hdr[6] = (kTraceFormatVersion >> 16) & 0xff;
    hdr[7] = (kTraceFormatVersion >> 24) & 0xff;
    packU64(hdr + 8, trace.seed);
    packU64(hdr + 16, trace.records.size());
    const std::uint32_t nlen =
        static_cast<std::uint32_t>(trace.name.size());
    hdr[24] = nlen & 0xff;
    hdr[25] = (nlen >> 8) & 0xff;
    hdr[26] = (nlen >> 16) & 0xff;
    hdr[27] = (nlen >> 24) & 0xff;
    put(hdr, sizeof(hdr));
    put(trace.name.data(), trace.name.size());

    std::uint64_t hash = kFnvOffset;
    unsigned char buf[kRecordBytes];
    for (const auto &r : trace.records) {
        packRecord(buf, r);
        hash = fnv1a(buf, kRecordBytes, hash);
        put(buf, kRecordBytes);
    }

    unsigned char tail[8];
    packU64(tail, hash);
    put(tail, 8);
}

Trace
readTrace(const std::string &path)
{
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f)
        PP_FATAL("cannot open trace file: ", path);

    auto get = [&](void *data, std::size_t len) {
        if (std::fread(data, 1, len, f.get()) != len)
            PP_FATAL("truncated trace file: ", path);
    };

    unsigned char hdr[4 + 4 + 8 + 8 + 4];
    get(hdr, sizeof(hdr));
    if (std::memcmp(hdr, kMagic, 4) != 0)
        PP_FATAL("not a trace file (bad magic): ", path);
    const std::uint32_t version = hdr[4] | (hdr[5] << 8) | (hdr[6] << 16) |
                                  (static_cast<std::uint32_t>(hdr[7]) << 24);
    if (version != kTraceFormatVersion)
        PP_FATAL("trace format version ", version, " unsupported (want ",
                 kTraceFormatVersion, "): ", path);

    Trace trace;
    trace.seed = unpackU64(hdr + 8);
    const std::uint64_t count = unpackU64(hdr + 16);
    const std::uint32_t nlen = hdr[24] | (hdr[25] << 8) | (hdr[26] << 16) |
                               (static_cast<std::uint32_t>(hdr[27]) << 24);
    if (nlen > 4096)
        PP_FATAL("implausible workload name length in trace: ", path);
    trace.name.resize(nlen);
    if (nlen)
        get(trace.name.data(), nlen);

    trace.records.reserve(count);
    std::uint64_t hash = kFnvOffset;
    unsigned char buf[kRecordBytes];
    for (std::uint64_t i = 0; i < count; ++i) {
        get(buf, kRecordBytes);
        hash = fnv1a(buf, kRecordBytes, hash);
        trace.records.push_back(unpackRecord(buf));
    }

    unsigned char tail[8];
    get(tail, 8);
    if (unpackU64(tail) != hash)
        PP_FATAL("trace checksum mismatch (corrupted tape): ", path);
    return trace;
}

} // namespace pipedepth
