/**
 * @file
 * Flattened trace replay buffer: the simulator's hot-path input.
 *
 * A Trace stores full TraceRecords (including branch targets the
 * timing model never reads) and leaves the per-op static properties
 * behind an opTraits() table lookup. The replay buffer flattens the
 * dynamic stream once, up front, into a contiguous array of 24-byte
 * ReplayOps with the traits pre-resolved into a flag byte, so the
 * per-instruction simulation loop touches exactly one small record
 * per instruction and re-derives nothing.
 *
 * Preparing a buffer is one linear pass; the SweepEngine prepares
 * each workload's buffer at most once per grid and replays it at
 * every depth (a 24-depth sweep reads the same buffer 24 times).
 *
 * The flattening is purely representational — every field is copied
 * or derived 1:1 from the trace — so simulating a ReplayBuffer is
 * byte-identical to simulating the Trace it came from
 * (tests/sweep/test_engine_determinism.cc pins this via the golden
 * result hashes).
 */

#ifndef PIPEDEPTH_TRACE_REPLAY_BUFFER_HH
#define PIPEDEPTH_TRACE_REPLAY_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace pipedepth
{

/** Pre-resolved OpTraits flags of one ReplayOp. */
enum ReplayFlags : std::uint8_t
{
    kReplayMem = 1u << 0,        //!< RX format (agen + cache access)
    kReplayLoad = 1u << 1,       //!< reads memory (Load, IntAluMem)
    kReplayStore = 1u << 2,      //!< writes memory
    kReplayBranch = 1u << 3,     //!< either branch class
    kReplayFp = 1u << 4,         //!< floating point
    kReplayUnpipelined = 1u << 5,//!< occupies its unit for the full latency
    kReplayTaken = 1u << 6,      //!< dynamic branch outcome
};

/**
 * One dynamic instruction, flattened for replay. 24 bytes: three per
 * 64-byte cache line, vs 40 for a padded TraceRecord.
 */
struct ReplayOp
{
    std::uint64_t pc;
    std::uint64_t mem_addr;
    std::uint8_t dst;
    std::uint8_t src1;
    std::uint8_t src2;
    std::uint8_t src3;
    std::uint8_t op;           //!< OpClass, for the rare exact dispatch
    std::uint8_t flags;        //!< ReplayFlags
    std::uint8_t exec_latency; //!< base execution latency in cycles
    std::uint8_t pad_ = 0;

    bool is(ReplayFlags f) const { return (flags & f) != 0; }
    OpClass opClass() const { return static_cast<OpClass>(op); }
};

static_assert(sizeof(ReplayOp) == 24, "ReplayOp must stay compact");

/** A prepared, contiguous replay image of one trace. */
struct ReplayBuffer
{
    std::string name;           //!< workload name (from the trace)
    std::vector<ReplayOp> ops;  //!< the dynamic stream, in order

    std::size_t size() const { return ops.size(); }
    bool empty() const { return ops.empty(); }
};

/** Flatten @p trace into a replay buffer (one linear pass). */
ReplayBuffer prepareReplay(const Trace &trace);

} // namespace pipedepth

#endif // PIPEDEPTH_TRACE_REPLAY_BUFFER_HH
