#include "trace/replay_buffer.hh"

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace pipedepth
{

ReplayBuffer
prepareReplay(const Trace &trace)
{
    TELEM_SPAN(span, "trace.replay.prepare");
    span.tag("workload", trace.name);
    span.tag("ops", static_cast<std::uint64_t>(trace.size()));

    ReplayBuffer buf;
    buf.name = trace.name;
    buf.ops.resize(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const TraceRecord &r = trace.records[i];
        const OpTraits &t = opTraits(r.op);
        ReplayOp &op = buf.ops[i];
        op.pc = r.pc;
        op.mem_addr = r.mem_addr;
        op.dst = r.dst;
        op.src1 = r.src1;
        op.src2 = r.src2;
        op.src3 = r.src3;
        op.op = static_cast<std::uint8_t>(r.op);
        op.flags = static_cast<std::uint8_t>(
            (t.is_mem ? kReplayMem : 0) | (t.is_load ? kReplayLoad : 0) |
            (t.is_store ? kReplayStore : 0) |
            (t.is_branch ? kReplayBranch : 0) |
            (t.is_fp ? kReplayFp : 0) |
            (t.unpipelined ? kReplayUnpipelined : 0) |
            (r.taken ? kReplayTaken : 0));
        PP_ASSERT(t.exec_latency >= 1 && t.exec_latency <= 255,
                  "exec latency out of ReplayOp range");
        op.exec_latency = static_cast<std::uint8_t>(t.exec_latency);
    }
    return buf;
}

} // namespace pipedepth
