#include "stats/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace pipedepth
{

void
Summary::add(double value)
{
    samples_.push_back(value);
    dirty_ = true;
}

void
Summary::add(const std::vector<double> &values)
{
    samples_.insert(samples_.end(), values.begin(), values.end());
    dirty_ = true;
}

const std::vector<double> &
Summary::sorted() const
{
    if (dirty_) {
        sorted_ = samples_;
        std::sort(sorted_.begin(), sorted_.end());
        dirty_ = false;
    }
    return sorted_;
}

double
Summary::min() const
{
    PP_ASSERT(!samples_.empty(), "no samples");
    return sorted().front();
}

double
Summary::max() const
{
    PP_ASSERT(!samples_.empty(), "no samples");
    return sorted().back();
}

double
Summary::mean() const
{
    PP_ASSERT(!samples_.empty(), "no samples");
    double sum = 0.0;
    for (double v : samples_)
        sum += v;
    return sum / static_cast<double>(samples_.size());
}

double
Summary::stddev() const
{
    if (samples_.size() < 2)
        return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double
Summary::median() const
{
    return percentile(50.0);
}

double
Summary::percentile(double q) const
{
    PP_ASSERT(!samples_.empty(), "no samples");
    PP_ASSERT(q >= 0.0 && q <= 100.0, "percentile must be in [0, 100]");
    const auto &s = sorted();
    if (s.size() == 1)
        return s.front();
    const double rank = q / 100.0 * static_cast<double>(s.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= s.size())
        return s.back();
    return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

void
Histogram::add(double value)
{
    ++bins_[static_cast<int>(std::lround(value))];
    ++total_;
}

int
Histogram::mode() const
{
    PP_ASSERT(total_ > 0, "empty histogram");
    int best_bin = bins_.begin()->first;
    int best_count = 0;
    for (const auto &[bin, count] : bins_) {
        if (count > best_count) {
            best_count = count;
            best_bin = bin;
        }
    }
    return best_bin;
}

std::string
Histogram::render() const
{
    std::string out;
    for (const auto &[bin, count] : bins_) {
        out += std::to_string(bin);
        out += '\t';
        out += std::to_string(count);
        out += '\t';
        out.append(static_cast<std::size_t>(count), '#');
        out += '\n';
    }
    return out;
}

} // namespace pipedepth
