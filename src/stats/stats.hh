/**
 * @file
 * Summary statistics and histograms for experiment reporting.
 *
 * The distribution figures of the paper (Figs. 6/7) are histograms of
 * per-workload optima; this module provides the accumulation and the
 * text rendering used by the benches, plus the usual summary
 * statistics (mean, median, percentiles, stddev) for EXPERIMENTS.md
 * style reporting.
 */

#ifndef PIPEDEPTH_STATS_STATS_HH
#define PIPEDEPTH_STATS_STATS_HH

#include <map>
#include <string>
#include <vector>

namespace pipedepth
{

/** Accumulates samples and answers summary queries. */
class Summary
{
  public:
    /** Add one sample. */
    void add(double value);

    /** Add many samples. */
    void add(const std::vector<double> &values);

    std::size_t count() const { return samples_.size(); }
    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation (n-1); 0 for fewer than 2 samples. */
    double stddev() const;
    double median() const;

    /**
     * Percentile by linear interpolation between order statistics.
     * @param q in [0, 100]
     */
    double percentile(double q) const;

    /** All samples, unsorted insertion order. */
    const std::vector<double> &samples() const { return samples_; }

  private:
    /** Sorted view, built lazily. */
    const std::vector<double> &sorted() const;

    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool dirty_ = true;
};

/** Integer-binned histogram (bin = round(value)). */
class Histogram
{
  public:
    /** Add one sample to its (rounded) bin. */
    void add(double value);

    /** Bin -> count, ascending by bin. */
    const std::map<int, int> &bins() const { return bins_; }

    /** Total samples. */
    std::size_t count() const { return total_; }

    /** The bin with the highest count (smallest on ties). */
    int mode() const;

    /** Render as "bin count ####" lines. */
    std::string render() const;

  private:
    std::map<int, int> bins_;
    std::size_t total_ = 0;
};

} // namespace pipedepth

#endif // PIPEDEPTH_STATS_STATS_HH
